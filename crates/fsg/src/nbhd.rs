//! Frequent-neighborhood-pattern mining over one large frozen graph.
//!
//! The paper's Algorithm 1/2 partitions the OD graph only because FSG
//! needs a transaction set; this module follows Han & Wen's "Mining
//! Frequent Neighborhood Patterns in Large Labeled Graphs" instead and
//! mines the single graph in place. The "transactions" are the r-hop
//! neighborhoods of every vertex: the **support of a pattern is the
//! number of distinct center vertices whose induced r-hop neighborhood
//! embeds it**. Support is anti-monotone under one-edge extension (a
//! neighborhood embedding a child embeds the parent), so the level-wise
//! growth, embedding propagation, and pre-filters of the FSG path all
//! transfer.
//!
//! What is *not* shared with [`crate::miner`]:
//!
//! * no partitioning and no per-transaction graph materialization — the
//!   only replicated state is the [`NbhdIndex`]: per-center sorted id
//!   lists over one shared [`FrozenGraph`] CSR. A [`NbhdView`] adapts a
//!   `(members, edges)` pair to [`GraphView`] by filtering the frozen
//!   label-sorted adjacency through a membership binary search, so
//!   pattern growth binary-searches the shared CSR instead of walking
//!   per-copy adjacency lists;
//! * candidate generation is **rightmost-first** one-edge extension
//!   ([`extend_rightmost`]): extensions are proposed from the
//!   highest-numbered (most recently appended) pattern vertex down,
//!   against the frequent single-edge vocabulary, and deduplicated by
//!   isomorphism class. Each surviving class keeps the first (parent,
//!   [`Extension`]) that produced it, which is what lets support
//!   counting grow the parent's per-center embedding store instead of
//!   searching from scratch.
//!
//! What *is* reused, per the shared support-counting machinery:
//! [`may_embed`] fingerprint rejection before every scratch VF2 decider
//! ([`Matcher`]), and the structure-of-arrays [`EmbStore`] per-center
//! embedding cache grown via [`grow_store`] — identical semantics to the
//! transaction path, with "center" in place of "TID".
//!
//! Determinism: centers are enumerated in ascending frozen-id order,
//! level-1 keys are sorted, candidate evaluation fans out over
//! [`Exec::try_par_map`] (ordered), and all folding walks candidates in
//! generation order — output is byte-identical at any thread count.

use crate::embed::{grow_store, seed_cap, txn_cap, EmbStore, Grown};
use crate::types::Support;
use tnet_exec::Exec;
use tnet_graph::canon::IsoClassMap;
use tnet_graph::fingerprint::{graph_fingerprints, may_embed};
use tnet_graph::frozen::FrozenGraph;
use tnet_graph::graph::{ELabel, EdgeId, Graph, VLabel, VertexId};
use tnet_graph::hash::{FxHashMap, FxHashSet};
use tnet_graph::iso::{Extension, Find, Matcher};
use tnet_graph::view::GraphView;

/// Neighborhood-miner configuration.
#[derive(Clone, Debug)]
pub struct NbhdConfig {
    /// Neighborhood radius in (undirected) hops from the center; must be
    /// at least 1. Radius 1 is the interesting transportation regime —
    /// "what surrounds a terminal" — and keeps the index near the size
    /// of the edge set; larger radii trade index size for context.
    pub radius: usize,
    /// Minimum support, resolved against the number of centers (= vertex
    /// count of the mined graph).
    pub min_support: Support,
    /// Stop after patterns of this many edges.
    pub max_edges: usize,
    /// Per-(pattern, center) embedding-list cap, exactly as
    /// [`crate::FsgConfig::embedding_cap`]: `0` disables propagation and
    /// every support test is a scratch VF2 search (kept for differential
    /// testing).
    pub embedding_cap: usize,
    /// Check [`may_embed`] before every scratch VF2 decider. Rejections
    /// are sound, so the toggle is output-invariant. The fingerprints
    /// consulted are the *full-graph* per-vertex fingerprints (a frozen
    /// array load): a neighborhood vertex's true fingerprint is a
    /// bitwise subset of its full-graph one, so subsumption against the
    /// superset can only weaken the filter, never unsoundly reject.
    pub fingerprint_filter: bool,
}

impl Default for NbhdConfig {
    fn default() -> Self {
        NbhdConfig {
            radius: 1,
            min_support: Support::Fraction(0.05),
            max_edges: 10,
            embedding_cap: 256,
            fingerprint_filter: true,
        }
    }
}

impl NbhdConfig {
    /// Sets the neighborhood radius.
    pub fn with_radius(mut self, r: usize) -> Self {
        self.radius = r;
        self
    }

    /// Sets the minimum support (in centers).
    pub fn with_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the maximum pattern size in edges.
    pub fn with_max_edges(mut self, n: usize) -> Self {
        self.max_edges = n;
        self
    }

    /// Sets the per-(pattern, center) embedding cap (`0` = scratch only).
    pub fn with_embedding_cap(mut self, cap: usize) -> Self {
        self.embedding_cap = cap;
        self
    }

    /// Enables or disables the fingerprint pre-filter.
    pub fn with_fingerprint_filter(mut self, on: bool) -> Self {
        self.fingerprint_filter = on;
        self
    }
}

/// A mined frequent neighborhood pattern.
#[derive(Clone, Debug)]
pub struct NbhdPattern {
    /// Representative graph of the isomorphism class.
    pub graph: Graph,
    /// Number of supporting centers.
    pub support: usize,
    /// Frozen-graph ids of the supporting centers (ascending).
    pub centers: Vec<u32>,
}

impl NbhdPattern {
    pub fn edges(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Per-run instrumentation, folded into the unified metrics namespace
/// under `nbhd.*` (see [`NbhdStats::record_into`]).
#[derive(Clone, Debug, Default)]
pub struct NbhdStats {
    /// Neighborhoods enumerated (= vertex count of the mined graph).
    pub centers: usize,
    /// Total member slots across all neighborhoods — the index's
    /// replication factor is `index_members / centers`.
    pub index_members: usize,
    /// Total edge slots across all neighborhoods.
    pub index_edges: usize,
    /// Candidates generated at each level (level 1 = single edges).
    pub candidates_per_level: Vec<usize>,
    /// Frequent patterns surviving at each level.
    pub frequent_per_level: Vec<usize>,
    /// Scratch VF2 deciders skipped because [`may_embed`] said no.
    pub fingerprint_rejects: usize,
    /// Scratch VF2 deciders executed.
    pub iso_tests: usize,
    /// Parent embeddings extended by one edge in place of scratch VF2.
    pub embeddings_extended: usize,
    /// (pattern, center) embedding lists that spilled to inexact seeds.
    pub embeddings_spilled: usize,
    /// Peak bytes held by one level's SoA embedding stores.
    pub soa_bytes: usize,
}

impl NbhdStats {
    pub fn total_candidates(&self) -> usize {
        self.candidates_per_level.iter().sum()
    }

    pub fn total_frequent(&self) -> usize {
        self.frequent_per_level.iter().sum()
    }

    /// Folds this run's counters into a [`tnet_obs::MetricsRegistry`]
    /// under `nbhd.*` names. Totals add; peaks keep their high-water
    /// mark.
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add("nbhd.centers", self.centers as u64);
        metrics.add("nbhd.index_members", self.index_members as u64);
        metrics.add("nbhd.index_edges", self.index_edges as u64);
        metrics.add("nbhd.levels", self.candidates_per_level.len() as u64);
        metrics.add("nbhd.candidates", self.total_candidates() as u64);
        metrics.add("nbhd.frequent", self.total_frequent() as u64);
        metrics.add("nbhd.fingerprint_rejects", self.fingerprint_rejects as u64);
        metrics.add("nbhd.iso_tests", self.iso_tests as u64);
        metrics.add("nbhd.embeddings_extended", self.embeddings_extended as u64);
        metrics.add("nbhd.embeddings_spilled", self.embeddings_spilled as u64);
        metrics.record_max("nbhd.soa_bytes", self.soa_bytes as u64);
    }
}

/// Successful mining output.
#[derive(Clone, Debug)]
pub struct NbhdOutput {
    /// All frequent connected patterns, largest-support first.
    pub patterns: Vec<NbhdPattern>,
    pub stats: NbhdStats,
}

/// Mining failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NbhdError {
    /// `radius` was 0 — a zero-hop neighborhood is just the center
    /// vertex and can never embed an edge pattern.
    InvalidRadius,
    /// The execution handle was cancelled mid-run.
    Cancelled,
}

impl std::fmt::Display for NbhdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NbhdError::InvalidRadius => write!(f, "neighborhood radius must be at least 1"),
            NbhdError::Cancelled => write!(f, "neighborhood mining run was cancelled"),
        }
    }
}

impl std::error::Error for NbhdError {}

/// Per-center neighborhood index over one shared [`FrozenGraph`]: two
/// flat id buffers with offsets (structure of arrays). Members and edge
/// ids per center are sorted ascending, which is what lets [`NbhdView`]
/// answer membership with a binary search and keep the [`GraphView`]
/// ascending-order contract for free.
pub struct NbhdIndex {
    member_off: Vec<u32>,
    members: Vec<VertexId>,
    edge_off: Vec<u32>,
    edges: Vec<EdgeId>,
}

impl NbhdIndex {
    /// Builds the induced r-hop neighborhood of every vertex: BFS over
    /// undirected hops collects the member set, then every frozen edge
    /// with both endpoints inside is an edge of the neighborhood (the
    /// *induced* definition — what makes delegating edge-existence
    /// queries to the shared CSR sound). Centers fan out over `exec` and
    /// are concatenated in ascending-center order.
    pub fn build(fg: &FrozenGraph, radius: usize, exec: &Exec) -> NbhdIndex {
        let centers: Vec<u32> = (0..GraphView::vertex_count(fg) as u32).collect();
        let per_center: Vec<(Vec<VertexId>, Vec<EdgeId>)> =
            exec.par_map(&centers, |&c| build_one(fg, VertexId(c), radius));
        let mut index = NbhdIndex {
            member_off: Vec::with_capacity(centers.len() + 1),
            members: Vec::new(),
            edge_off: Vec::with_capacity(centers.len() + 1),
            edges: Vec::new(),
        };
        index.member_off.push(0);
        index.edge_off.push(0);
        for (members, edges) in per_center {
            index.members.extend_from_slice(&members);
            index.edges.extend_from_slice(&edges);
            index.member_off.push(index.members.len() as u32);
            index.edge_off.push(index.edges.len() as u32);
        }
        index
    }

    /// Number of centers (= vertices of the frozen graph).
    pub fn centers(&self) -> usize {
        self.member_off.len() - 1
    }

    /// Total member slots across all neighborhoods.
    pub fn member_slots(&self) -> usize {
        self.members.len()
    }

    /// Total edge slots across all neighborhoods.
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Read view of center `c`'s neighborhood.
    pub fn view<'a>(&'a self, fg: &'a FrozenGraph, c: usize) -> NbhdView<'a> {
        NbhdView {
            fg,
            members: &self.members[self.member_off[c] as usize..self.member_off[c + 1] as usize],
            edges: &self.edges[self.edge_off[c] as usize..self.edge_off[c + 1] as usize],
        }
    }
}

/// One center's induced r-hop neighborhood: sorted members, and every
/// frozen edge with both endpoints among them (ascending).
fn build_one(fg: &FrozenGraph, center: VertexId, radius: usize) -> (Vec<VertexId>, Vec<EdgeId>) {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    seen.insert(center);
    let mut members = vec![center];
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for e in fg.incident_edges(v) {
                let (s, d, _) = GraphView::edge(fg, e);
                let w = if s == v { d } else { s };
                if seen.insert(w) {
                    members.push(w);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    members.sort_unstable();
    let mut edges = Vec::new();
    for &v in &members {
        for e in fg.out_edges(v) {
            if members.binary_search(&GraphView::edge_dst(fg, e)).is_ok() {
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    (members, edges)
}

/// [`GraphView`] over one neighborhood: frozen ids, adjacency delegated
/// to the shared CSR and filtered by a membership binary search. Because
/// the neighborhood is *induced*, any frozen edge between two members
/// belongs to it — `has_edge_labeled` (the VF2 back-edge check) can
/// delegate to the CSR's binary search unfiltered.
#[derive(Clone, Copy)]
pub struct NbhdView<'a> {
    fg: &'a FrozenGraph,
    members: &'a [VertexId],
    edges: &'a [EdgeId],
}

impl NbhdView<'_> {
    #[inline]
    fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

impl GraphView for NbhdView<'_> {
    fn vertex_count(&self) -> usize {
        self.members.len()
    }

    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.members.iter().copied()
    }

    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    fn vertex_label(&self, v: VertexId) -> VLabel {
        GraphView::vertex_label(self.fg, v)
    }

    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        GraphView::edge(self.fg, e)
    }

    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.fg
            .out_edges(v)
            .filter(|&e| self.contains(GraphView::edge_dst(self.fg, e)))
    }

    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.fg
            .in_edges(v)
            .filter(|&e| self.contains(GraphView::edge_src(self.fg, e)))
    }

    fn visit_out_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        // The frozen override binary-searches its label-sorted slice;
        // only the membership filter is added on top.
        self.fg.visit_out_matching(v, el, vl, &mut |e, d| {
            if self.contains(d) {
                f(e, d);
            }
        });
    }

    fn visit_in_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        self.fg.visit_in_matching(v, el, vl, &mut |e, s| {
            if self.contains(s) {
                f(e, s);
            }
        });
    }

    fn has_edge_labeled(&self, s: VertexId, d: VertexId, el: ELabel) -> bool {
        // Induced neighborhood: an edge between members is always in.
        // Callers only pass member vertices (VF2 images).
        debug_assert!(self.contains(s) && self.contains(d));
        self.fg.has_edge_labeled(s, d, el)
    }

    fn vertex_fp(&self, v: VertexId) -> u64 {
        // Full-graph fingerprint (frozen array load): a superset of the
        // neighborhood-local one in every packed field, so subsumption
        // checks stay sound (see `NbhdConfig::fingerprint_filter`).
        self.fg.vertex_fp(v)
    }
}

/// A frequent single-edge vocabulary entry (`is_loop` marks self-loop
/// classes, whose `src == dst`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct VocabEntry {
    src: VLabel,
    label: ELabel,
    dst: VLabel,
    is_loop: bool,
}

/// Generates all one-edge extensions of `pattern` against the frequent
/// single-edge vocabulary, proposing from the **rightmost** (highest
/// slot, most recently appended) pattern vertex first, and deduplicates
/// by isomorphism class. Each class keeps the first `(parent, growth
/// step)` that produced it, so the kept representative graph is exactly
/// that parent's clone plus one appended edge — the invariant the
/// embedding-store growth relies on.
fn extend_rightmost(
    pattern: &Graph,
    vocab: &[VocabEntry],
    parent: usize,
    acc: &mut IsoClassMap<(usize, Extension)>,
) {
    let vertices: Vec<VertexId> = pattern.vertices().collect();
    let exists = |s: VertexId, d: VertexId, l: ELabel| {
        pattern.out_edges(s).any(|e| {
            let (_, dd, ll) = pattern.edge(e);
            dd == d && ll == l
        })
    };
    for &v in vertices.iter().rev() {
        let vl = pattern.vertex_label(v);
        for ev in vocab {
            if ev.is_loop {
                // Self-loop on an existing vertex.
                if ev.src == vl && !exists(v, v, ev.label) {
                    let mut g = pattern.clone();
                    g.add_edge(v, v, ev.label);
                    acc.entry_or_insert_with(&g, || {
                        (
                            parent,
                            Extension::Close {
                                src: v,
                                dst: v,
                                elabel: ev.label,
                            },
                        )
                    });
                }
                continue;
            }
            if ev.src == vl {
                // v --(label)--> new vertex.
                let mut g = pattern.clone();
                let nv = g.add_vertex(ev.dst);
                g.add_edge(v, nv, ev.label);
                acc.entry_or_insert_with(&g, || {
                    (
                        parent,
                        Extension::NewDst {
                            src: v,
                            elabel: ev.label,
                            vlabel: ev.dst,
                        },
                    )
                });
                // v --(label)--> existing vertex (cycle-closing), also
                // rightmost-first. Patterns are simple graphs, so an
                // already-present (src, dst, label) triple is skipped.
                for &u in vertices.iter().rev() {
                    if u == v || pattern.vertex_label(u) != ev.dst || exists(v, u, ev.label) {
                        continue;
                    }
                    let mut g = pattern.clone();
                    g.add_edge(v, u, ev.label);
                    acc.entry_or_insert_with(&g, || {
                        (
                            parent,
                            Extension::Close {
                                src: v,
                                dst: u,
                                elabel: ev.label,
                            },
                        )
                    });
                }
            }
            // new vertex --(label)--> v (mirror).
            if ev.dst == vl {
                let mut g = pattern.clone();
                let nv = g.add_vertex(ev.src);
                g.add_edge(nv, v, ev.label);
                acc.entry_or_insert_with(&g, || {
                    (
                        parent,
                        Extension::NewSrc {
                            dst: v,
                            elabel: ev.label,
                            vlabel: ev.src,
                        },
                    )
                });
            }
        }
    }
}

/// Per-candidate counter deltas and verdict from the parallel stage.
/// Folding in candidate order keeps output byte-identical to sequential.
struct Verdict {
    centers: Vec<u32>,
    stores: Vec<EmbStore>,
    fingerprint_rejects: usize,
    iso_tests: usize,
    embeddings_extended: usize,
    embeddings_spilled: usize,
}

/// Mines frequent neighborhood patterns of `g`: freezes a CSR snapshot
/// and delegates to [`mine_frozen`].
///
/// `g` must be a simple graph (no parallel `(src, dst, label)` triples) —
/// run [`Graph::dedup_edges`] first, exactly as for the FSG path.
pub fn mine_neighborhoods(
    g: &Graph,
    cfg: &NbhdConfig,
    exec: &Exec,
) -> Result<NbhdOutput, NbhdError> {
    mine_frozen(&g.freeze(), cfg, exec)
}

/// Mines all frequent connected neighborhood patterns of `fg` directly
/// on the frozen CSR — no partitioning, no per-transaction graphs.
///
/// # Errors
/// - [`NbhdError::InvalidRadius`] when `cfg.radius == 0`.
/// - [`NbhdError::Cancelled`] when `exec` is cancelled mid-run.
pub fn mine_frozen(
    fg: &FrozenGraph,
    cfg: &NbhdConfig,
    exec: &Exec,
) -> Result<NbhdOutput, NbhdError> {
    if cfg.radius == 0 {
        return Err(NbhdError::InvalidRadius);
    }
    if exec.is_cancelled() {
        return Err(NbhdError::Cancelled);
    }
    // One candidate per chunk, as in the FSG path: per-candidate cost is
    // wildly uneven, the finest grain balances best.
    let exec = &exec.with_chunk_items(1);
    let span_total = exec.span().time("nbhd");
    let span = span_total.span().clone();
    let mut stats = NbhdStats::default();
    let n = GraphView::vertex_count(fg);
    stats.centers = n;
    let min_support = cfg.min_support.resolve(n);
    let cap = cfg.embedding_cap;

    // ---- Neighborhood index -------------------------------------------
    let index_timer = span.time("neighborhoods");
    let index = NbhdIndex::build(fg, cfg.radius, exec);
    stats.index_members = index.member_slots();
    stats.index_edges = index.edge_slots();
    drop(index_timer);

    // ---- Level 1: single-edge patterns --------------------------------
    // Keyed by (src label, edge label, dst label, is_loop); sorted for a
    // hash-order-independent enumeration.
    type EdgeKey = (u32, u32, u32, bool);
    let level1_timer = span.time("level1");
    let mut level1: FxHashMap<EdgeKey, Vec<u32>> = FxHashMap::default();
    let mut seen: FxHashSet<EdgeKey> = FxHashSet::default();
    for c in 0..n {
        let view = index.view(fg, c);
        seen.clear();
        for e in GraphView::edges(&view) {
            let (s, d, l) = GraphView::edge(fg, e);
            let key = (
                GraphView::vertex_label(fg, s).0,
                l.0,
                GraphView::vertex_label(fg, d).0,
                s == d,
            );
            if seen.insert(key) {
                level1.entry(key).or_default().push(c as u32);
            }
        }
    }
    let mut entries: Vec<(EdgeKey, Vec<u32>)> = level1.into_iter().collect();
    entries.sort_unstable_by_key(|(k, _)| *k);
    stats.candidates_per_level.push(entries.len());
    let mut frequent: Vec<NbhdPattern> = Vec::new();
    let mut vocab: Vec<VocabEntry> = Vec::new();
    for ((sl, el, dl, is_loop), centers) in entries {
        if centers.len() < min_support {
            continue;
        }
        let mut g = Graph::new();
        let s = g.add_vertex(VLabel(sl));
        if is_loop {
            g.add_edge(s, s, ELabel(el));
        } else {
            let d = g.add_vertex(VLabel(dl));
            g.add_edge(s, d, ELabel(el));
        }
        vocab.push(VocabEntry {
            src: VLabel(sl),
            label: ELabel(el),
            dst: VLabel(dl),
            is_loop,
        });
        frequent.push(NbhdPattern {
            graph: g,
            support: centers.len(),
            centers,
        });
    }
    stats.frequent_per_level.push(frequent.len());

    // Embedding stores for the frontier level, `stores[i][k]` covering
    // `frequent[i].centers[k]`.
    let mut stores: Vec<Vec<EmbStore>> = if cap > 0 && cfg.max_edges > 1 {
        frequent
            .iter()
            .map(|p| level1_stores(p, fg, &index, cap, &mut stats.embeddings_spilled))
            .collect()
    } else {
        Vec::new()
    };
    stats.soa_bytes = stores.iter().flatten().map(|s| s.byte_len()).sum();
    drop(level1_timer);
    // Pre-register the per-level phases for scheduling-independent
    // `--trace` order.
    span.child("extend");
    span.child("support_count");

    // ---- Levels 2..max ------------------------------------------------
    let mut all_frequent: Vec<NbhdPattern> = Vec::new();
    let mut level = 1usize;
    while !frequent.is_empty() && level < cfg.max_edges {
        level += 1;
        if exec.is_cancelled() {
            return Err(NbhdError::Cancelled);
        }
        let gen_timer = span.time("extend");
        let mut candidates: IsoClassMap<(usize, Extension)> = IsoClassMap::new();
        for (idx, p) in frequent.iter().enumerate() {
            extend_rightmost(&p.graph, &vocab, idx, &mut candidates);
        }
        let cand_list: Vec<(Graph, (usize, Extension))> = candidates.into_iter_pairs().collect();
        stats.candidates_per_level.push(cand_list.len());
        drop(gen_timer);

        let support_timer = span.time("support_count");
        let last_level = level == cfg.max_edges;
        let verdicts = exec
            .try_par_map(&cand_list, |(candidate, (pidx, ext))| {
                let parent = &frequent[*pidx];
                let pstores: &[EmbStore] = if cap > 0 { &stores[*pidx] } else { &[] };
                let mut v = Verdict {
                    centers: Vec::new(),
                    stores: Vec::new(),
                    fingerprint_rejects: 0,
                    iso_tests: 0,
                    embeddings_extended: 0,
                    embeddings_spilled: 0,
                };
                // Scratch decider built lazily: with propagation on, most
                // candidates never need it.
                let mut scratch: Option<(Matcher, Vec<u64>)> = None;
                // Fingerprint pre-filter + scratch VF2 decider for one
                // center, harvesting seeds mid-run so descendants extend
                // instead of re-searching.
                let settle_scratch = |v: &mut Verdict,
                                      scratch: &mut Option<(Matcher, Vec<u64>)>,
                                      view: NbhdView<'_>,
                                      c: u32| {
                    let (matcher, fps) = scratch.get_or_insert_with(|| {
                        (
                            Matcher::new(candidate),
                            if cfg.fingerprint_filter {
                                graph_fingerprints(candidate)
                            } else {
                                Vec::new()
                            },
                        )
                    });
                    if cfg.fingerprint_filter && !may_embed(fps, &view) {
                        v.fingerprint_rejects += 1;
                        return;
                    }
                    v.iso_tests += 1;
                    if last_level || cap == 0 {
                        // No descendant will consume a store (last
                        // level) or stores are disabled: existence
                        // alone settles support.
                        if matcher.matches(&view) {
                            v.centers.push(c);
                        }
                        return;
                    }
                    // Harvest seeds from the settling search so
                    // descendants extend instead of re-searching.
                    let limit = seed_cap().min(txn_cap(cap, &view));
                    let seeds = matcher.find_unpruned(&view, Find::AtMost(limit));
                    if !seeds.is_empty() {
                        v.centers.push(c);
                        let stride = candidate.vertex_count();
                        let mut flat = Vec::with_capacity(seeds.len() * stride);
                        for s in &seeds {
                            flat.extend_from_slice(s.as_row());
                        }
                        v.stores
                            .push(EmbStore::from_rows(stride, flat, seeds.len() < limit));
                    }
                };
                for (k, &c) in parent.centers.iter().enumerate() {
                    // Infeasibility early-exit: not enough centers left to
                    // reach threshold. The partial verdict is discarded by
                    // the fold below.
                    if v.centers.len() + (parent.centers.len() - k) < min_support {
                        break;
                    }
                    let view = index.view(fg, c as usize);
                    if cap == 0 {
                        settle_scratch(&mut v, &mut scratch, view, c);
                        continue;
                    }
                    match grow_store(
                        &view,
                        &pstores[k],
                        ext,
                        cap,
                        last_level,
                        &mut v.embeddings_extended,
                        &mut v.embeddings_spilled,
                    ) {
                        Grown::Absent => {}
                        Grown::Unverified => settle_scratch(&mut v, &mut scratch, view, c),
                        Grown::Witnessed { store } => {
                            v.centers.push(c);
                            if let Some(st) = store {
                                v.stores.push(st);
                            }
                        }
                    }
                }
                v
            })
            .map_err(|_| NbhdError::Cancelled)?;

        let mut next: Vec<NbhdPattern> = Vec::new();
        let mut next_stores: Vec<Vec<EmbStore>> = Vec::new();
        let mut level_soa_bytes = 0usize;
        for ((candidate, _), verdict) in cand_list.into_iter().zip(verdicts) {
            stats.fingerprint_rejects += verdict.fingerprint_rejects;
            stats.iso_tests += verdict.iso_tests;
            stats.embeddings_extended += verdict.embeddings_extended;
            stats.embeddings_spilled += verdict.embeddings_spilled;
            if verdict.centers.len() >= min_support {
                next.push(NbhdPattern {
                    support: verdict.centers.len(),
                    graph: candidate,
                    centers: verdict.centers,
                });
                if cap > 0 {
                    level_soa_bytes += verdict.stores.iter().map(|s| s.byte_len()).sum::<usize>();
                    next_stores.push(verdict.stores);
                }
            }
        }
        stats.soa_bytes = stats.soa_bytes.max(level_soa_bytes);
        stats.frequent_per_level.push(next.len());
        all_frequent.extend(std::mem::replace(&mut frequent, next));
        stores = next_stores;
        drop(support_timer);
    }
    all_frequent.extend(frequent);
    all_frequent.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.graph.edge_count().cmp(&a.graph.edge_count()))
    });
    stats.record_into(exec.metrics());
    Ok(NbhdOutput {
        patterns: all_frequent,
        stats,
    })
}

/// Enumerates all embeddings of a frequent single-edge pattern in each
/// supporting center's neighborhood — the neighborhood analogue of
/// [`crate::embed::level1_store`], aligned with `p.centers`.
fn level1_stores(
    p: &NbhdPattern,
    fg: &FrozenGraph,
    index: &NbhdIndex,
    cap: usize,
    spilled: &mut usize,
) -> Vec<EmbStore> {
    let e = p.graph.edges().next().expect("level-1 pattern has an edge");
    let (ps, pd, el) = p.graph.edge(e);
    let is_loop = ps == pd;
    let sl = p.graph.vertex_label(ps);
    let dl = p.graph.vertex_label(pd);
    let stride = if is_loop { 1 } else { 2 };
    p.centers
        .iter()
        .map(|&c| {
            let view = index.view(fg, c as usize);
            let cap = txn_cap(cap, &view);
            let mut store = EmbStore::new(stride, true);
            for te in GraphView::edges(&view) {
                let (ts, td, tl) = GraphView::edge(fg, te);
                if tl != el {
                    continue;
                }
                if is_loop {
                    if ts != td || GraphView::vertex_label(fg, ts) != sl {
                        continue;
                    }
                    store.push_row(&[ts]);
                } else {
                    if ts == td
                        || GraphView::vertex_label(fg, ts) != sl
                        || GraphView::vertex_label(fg, td) != dl
                    {
                        continue;
                    }
                    store.push_row(&[ts, td]);
                }
                // The mined graph is simple (dedup'd), and induced
                // neighborhoods of a simple graph stay simple — each edge
                // is a distinct vertex mapping.
                if store.len() > cap {
                    break;
                }
            }
            if store.len() > cap {
                *spilled += 1;
                store.exact = false;
                let keep = seed_cap().min(cap);
                let flat: Vec<VertexId> = store
                    .rows()
                    .take(keep)
                    .flat_map(|r| r.iter().copied())
                    .collect();
                store = EmbStore::from_rows(stride, flat, false);
            }
            store
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn cfg(count: usize) -> NbhdConfig {
        NbhdConfig::default()
            .with_support(Support::Count(count))
            .with_max_edges(4)
    }

    fn mine(g: &Graph, cfg: &NbhdConfig) -> NbhdOutput {
        mine_neighborhoods(g, cfg, &Exec::sequential()).unwrap()
    }

    #[test]
    fn radius_zero_rejected() {
        let g = shapes::chain(2, 0, 1);
        let err = mine_neighborhoods(&g, &cfg(1).with_radius(0), &Exec::sequential());
        assert_eq!(err.unwrap_err(), NbhdError::InvalidRadius);
    }

    #[test]
    fn index_is_induced_and_sorted() {
        // chain a -> b -> c: radius 1 of b covers everything; of a only
        // {a, b} and the one edge between them.
        let g = shapes::chain(2, 0, 1);
        let fg = g.freeze();
        let index = NbhdIndex::build(&fg, 1, &Exec::sequential());
        assert_eq!(index.centers(), 3);
        let va = index.view(&fg, 0);
        assert_eq!(GraphView::vertex_count(&va), 2);
        assert_eq!(GraphView::edge_count(&va), 1);
        let vb = index.view(&fg, 1);
        assert_eq!(GraphView::vertex_count(&vb), 3);
        assert_eq!(GraphView::edge_count(&vb), 2);
        let members: Vec<VertexId> = GraphView::vertices(&vb).collect();
        assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted members");
    }

    #[test]
    fn chain_supports_count_centers() {
        // Path of 4 edges, radius 1: the single-edge pattern embeds in
        // every center's neighborhood (all 5 centers); the 2-chain embeds
        // wherever a 2-hop path is induced — every center whose 1-hop
        // ball contains two consecutive edges, i.e. the 4 interior-ish
        // centers (ends see only one edge).
        let g = shapes::chain(4, 0, 1);
        let out = mine(&g, &cfg(1));
        let single = shapes::chain(1, 0, 1);
        let two = shapes::chain(2, 0, 1);
        let p1 = out
            .patterns
            .iter()
            .find(|p| are_isomorphic(&p.graph, &single))
            .unwrap();
        assert_eq!(p1.support, 5);
        assert_eq!(p1.centers, vec![0, 1, 2, 3, 4]);
        let p2 = out
            .patterns
            .iter()
            .find(|p| are_isomorphic(&p.graph, &two))
            .unwrap();
        // Centers 1..4 each see both edges of some 2-chain; ends 0 and 4
        // see a single edge only... center 0's ball is {0,1} (1 edge), so
        // support is the 3 interior vertices of the 5-path.
        assert_eq!(p2.support, 3);
        assert_eq!(p2.centers, vec![1, 2, 3]);
    }

    #[test]
    fn radius_covering_graph_gives_full_support() {
        // Radius ≥ diameter: every neighborhood is the whole (connected)
        // graph, so every pattern with at least one embedding has
        // support = vertex count.
        let g = shapes::cycle(4, 0, 1);
        let out = mine(&g, &cfg(4).with_radius(4));
        assert!(!out.patterns.is_empty());
        for p in &out.patterns {
            assert_eq!(p.support, 4, "pattern {:?}", p.graph);
        }
        // The full cycle itself is found at max_edges = 4.
        assert!(out
            .patterns
            .iter()
            .any(|p| are_isomorphic(&p.graph, &shapes::cycle(4, 0, 1))));
    }

    #[test]
    fn self_loops_mined() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(1));
        let b = g.add_vertex(VLabel(1));
        g.add_edge(a, a, ELabel(0));
        g.add_edge(a, b, ELabel(2));
        let out = mine(&g, &cfg(1).with_radius(2));
        let mut loop_pat = Graph::new();
        let v = loop_pat.add_vertex(VLabel(1));
        loop_pat.add_edge(v, v, ELabel(0));
        let lp = out
            .patterns
            .iter()
            .find(|p| are_isomorphic(&p.graph, &loop_pat))
            .unwrap();
        assert_eq!(lp.support, 2, "both centers see the loop at radius 2");
        // Loop + edge combination pattern is also found.
        let mut combo = loop_pat.clone();
        let w = combo.add_vertex(VLabel(1));
        let v0 = combo.vertices().next().unwrap();
        combo.add_edge(v0, w, ELabel(2));
        assert!(out
            .patterns
            .iter()
            .any(|p| are_isomorphic(&p.graph, &combo)));
    }

    #[test]
    fn propagated_matches_scratch_and_toggles_are_invariant() {
        use tnet_graph::generate::{random_graph, RandomGraphConfig};
        let g = {
            let mut g = random_graph(
                &RandomGraphConfig {
                    vertices: 24,
                    edges: 60,
                    vertex_labels: 2,
                    edge_labels: 3,
                    self_loops: true,
                },
                17,
            );
            g.dedup_edges();
            g
        };
        let base = mine(&g, &cfg(3));
        assert!(!base.patterns.is_empty());
        for alt_cfg in [
            cfg(3).with_embedding_cap(0),
            cfg(3).with_embedding_cap(1),
            cfg(3).with_fingerprint_filter(false),
        ] {
            let alt = mine(&g, &alt_cfg);
            assert_eq!(base.patterns.len(), alt.patterns.len());
            for (a, b) in base.patterns.iter().zip(&alt.patterns) {
                assert_eq!(a.support, b.support);
                assert_eq!(a.centers, b.centers);
                assert!(are_isomorphic(&a.graph, &b.graph));
            }
        }
        // The tiny cap must exercise the spill/scratch machinery.
        let tiny = mine(&g, &cfg(3).with_embedding_cap(1));
        assert!(tiny.stats.embeddings_spilled > 0);
    }

    #[test]
    fn stats_are_recorded() {
        let g = shapes::cycle(5, 0, 1);
        let out = mine(&g, &cfg(2).with_radius(2));
        assert_eq!(out.stats.centers, 5);
        assert!(out.stats.index_members >= 5);
        assert!(out.stats.index_edges >= 5);
        assert_eq!(
            out.stats.candidates_per_level.len(),
            out.stats.frequent_per_level.len()
        );
        assert!(out.stats.total_frequent() >= out.patterns.len());
        let m = tnet_obs::MetricsRegistry::new();
        out.stats.record_into(&m);
        assert_eq!(m.get("nbhd.centers"), 5);
    }

    #[test]
    fn support_is_antitone_in_extension() {
        let g = shapes::hub_and_spoke(4, 0, 1);
        let out = mine(&g, &cfg(1).with_radius(2));
        for p in &out.patterns {
            for sub in crate::extend::connected_sub_patterns(&p.graph) {
                if let Some(q) = out.patterns.iter().find(|q| are_isomorphic(&q.graph, &sub)) {
                    assert!(q.support >= p.support);
                }
            }
        }
    }
}
