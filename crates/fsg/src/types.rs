//! Configuration, results, and instrumentation types for the FSG miner.

use tnet_graph::graph::Graph;

/// Minimum support specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Support {
    /// Absolute number of transactions.
    Count(usize),
    /// Fraction of the transaction set (FSG's `s·|D|`), in (0, 1].
    Fraction(f64),
}

impl Support {
    /// Resolves to an absolute count for `n` transactions (at least 1).
    pub fn resolve(self, n: usize) -> usize {
        match self {
            Support::Count(c) => c.max(1),
            Support::Fraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "support fraction out of range");
                ((f * n as f64).ceil() as usize).max(1)
            }
        }
    }
}

/// Miner configuration.
#[derive(Clone, Debug)]
pub struct FsgConfig {
    pub min_support: Support,
    /// Stop after patterns of this many edges.
    pub max_edges: usize,
    /// Abort with [`FsgError::MemoryBudgetExceeded`] when the estimated
    /// size of a level's candidate set crosses this many bytes. `None`
    /// disables the check. This reproduces the paper's §6.1 observation —
    /// "we were unable to run FSG on the entire data set due to
    /// insufficient memory" — as a deterministic, recoverable error
    /// instead of host OOM.
    pub memory_budget: Option<usize>,
    /// Per-(pattern, transaction) embedding-list cap for propagated
    /// support counting. The effective cap for a transaction is
    /// `max(embedding_cap, transaction edge count)` — a list no longer
    /// than the transaction costs no more than the transaction itself,
    /// and large transactions are exactly where scratch searches are most
    /// expensive. Lists at or under the cap are stored and extended one
    /// edge at a time as patterns grow; a list that overflows "spills":
    /// it is truncated to a bounded seed prefix and marked inexact, so
    /// memory stays bounded on symmetric/dense transactions. Extensions
    /// of the kept seeds still prove support, while an empty extension
    /// result from an inexact list is re-verified by a scratch VF2
    /// search. `0` disables propagation entirely (every support test is a
    /// scratch VF2 search — the pre-optimization behavior, kept for
    /// differential testing).
    pub embedding_cap: usize,
    /// Use `u64` bitsets for the all-parents TID intersection when the
    /// lists are dense enough (see [`crate::tidset::use_bitset`]);
    /// `false` forces the sorted-merge path everywhere. Both paths
    /// compute the same set, so this toggle is output-invariant — kept
    /// for differential testing and the per-technique bench rows.
    pub tid_bitsets: bool,
    /// Check per-vertex structural fingerprints
    /// ([`tnet_graph::fingerprint`]) before every scratch VF2 support
    /// test; a fingerprint reject proves no embedding exists, so the
    /// toggle is output-invariant. `false` disables the filter (kept for
    /// differential testing and the per-technique bench rows).
    pub fingerprint_filter: bool,
}

impl Default for FsgConfig {
    fn default() -> Self {
        FsgConfig {
            min_support: Support::Fraction(0.05),
            max_edges: 10,
            memory_budget: None,
            embedding_cap: 256,
            tid_bitsets: true,
            fingerprint_filter: true,
        }
    }
}

impl FsgConfig {
    /// Sets the minimum support.
    pub fn with_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the maximum pattern size in edges.
    pub fn with_max_edges(mut self, n: usize) -> Self {
        self.max_edges = n;
        self
    }

    /// Sets the candidate-set memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the per-(pattern, transaction) embedding-list cap (`0`
    /// disables embedding propagation).
    pub fn with_embedding_cap(mut self, cap: usize) -> Self {
        self.embedding_cap = cap;
        self
    }

    /// Enables or disables bitset TID intersection.
    pub fn with_tid_bitsets(mut self, on: bool) -> Self {
        self.tid_bitsets = on;
        self
    }

    /// Enables or disables the fingerprint pre-filter.
    pub fn with_fingerprint_filter(mut self, on: bool) -> Self {
        self.fingerprint_filter = on;
        self
    }
}

/// A mined frequent connected subgraph.
#[derive(Clone, Debug)]
pub struct FrequentPattern {
    /// Representative graph of the isomorphism class.
    pub graph: Graph,
    /// Number of supporting transactions.
    pub support: usize,
    /// Indices of the supporting transactions (ascending).
    pub tids: Vec<u32>,
}

impl FrequentPattern {
    pub fn edges(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Per-run instrumentation (drives the §8 analysis benches).
#[derive(Clone, Debug, Default)]
pub struct MiningStats {
    /// Candidates generated at each level (level 1 = single edges).
    pub candidates_per_level: Vec<usize>,
    /// Frequent patterns surviving at each level.
    pub frequent_per_level: Vec<usize>,
    /// Candidates eliminated by downward-closure pruning.
    pub closure_pruned: usize,
    /// Subgraph-isomorphism (support-count) tests executed. With
    /// embedding propagation enabled these only happen when a truncated
    /// (inexact) embedding list yields no extension — an unverified "no"
    /// that is settled from scratch.
    pub iso_tests: usize,
    /// Peak estimated candidate-set bytes across levels.
    pub peak_candidate_bytes: usize,
    /// Parent embeddings extended by one edge in place of scratch VF2
    /// support tests.
    pub embeddings_extended: usize,
    /// (pattern, transaction) embedding lists that overflowed the cap and
    /// were truncated to `embedding_cap` inexact seed entries.
    pub embeddings_spilled: usize,
    /// Transaction checks avoided by intersecting *all* parents' TID
    /// lists instead of seeding from the single smallest parent.
    pub tid_intersection_skips: usize,
    /// Scratch VF2 searches skipped because a pattern vertex had no
    /// fingerprint-compatible transaction vertex
    /// ([`tnet_graph::fingerprint::may_embed`] said no).
    pub fingerprint_rejects: usize,
    /// Pairwise bitset AND operations that replaced sorted TID merges in
    /// the all-parents intersection.
    pub bitset_intersections: usize,
    /// Peak bytes held by one level's structure-of-arrays embedding
    /// stores (the flat `VertexId` buffers).
    pub soa_bytes: usize,
}

impl MiningStats {
    pub fn total_candidates(&self) -> usize {
        self.candidates_per_level.iter().sum()
    }

    pub fn total_frequent(&self) -> usize {
        self.frequent_per_level.iter().sum()
    }

    /// Folds this run's counters into a [`tnet_obs::MetricsRegistry`]
    /// under `fsg.*` names (the unified namespace; see DESIGN.md §10).
    /// Totals add; peaks keep their high-water mark.
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add("fsg.levels", self.candidates_per_level.len() as u64);
        metrics.add("fsg.candidates", self.total_candidates() as u64);
        metrics.add("fsg.frequent", self.total_frequent() as u64);
        metrics.add("fsg.closure_pruned", self.closure_pruned as u64);
        metrics.add("fsg.iso_tests", self.iso_tests as u64);
        metrics.add("fsg.embeddings_extended", self.embeddings_extended as u64);
        metrics.add("fsg.embeddings_spilled", self.embeddings_spilled as u64);
        metrics.add(
            "fsg.tid_intersection_skips",
            self.tid_intersection_skips as u64,
        );
        metrics.add("fsg.fingerprint_rejects", self.fingerprint_rejects as u64);
        metrics.add("fsg.bitset_intersections", self.bitset_intersections as u64);
        metrics.record_max("fsg.peak_candidate_bytes", self.peak_candidate_bytes as u64);
        metrics.record_max("fsg.soa_bytes", self.soa_bytes as u64);
    }
}

/// Successful mining output.
#[derive(Clone, Debug)]
pub struct FsgOutput {
    /// All frequent connected patterns, largest-support first.
    pub patterns: Vec<FrequentPattern>,
    pub stats: MiningStats,
}

/// Mining failure.
#[derive(Clone, Debug)]
pub enum FsgError {
    /// The candidate set at `level` was estimated at `estimated_bytes`,
    /// above the configured budget. `partial_stats` covers the completed
    /// levels.
    MemoryBudgetExceeded {
        level: usize,
        estimated_bytes: usize,
        budget: usize,
        /// Boxed: the counter struct is large and would dominate the
        /// size of every `Result` on the mining path.
        partial_stats: Box<MiningStats>,
    },
    /// The mine's execution handle was cancelled (by a caller, a
    /// deadline, or a sibling's memory-budget abort propagating through
    /// a shared [`tnet_exec::CancelToken`]) before the run completed.
    Cancelled,
    /// An armed failpoint (`fsg::candidate_gen`) injected a fault.
    Fault(tnet_exec::failpoint::Fault),
}

impl std::fmt::Display for FsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsgError::MemoryBudgetExceeded {
                level,
                estimated_bytes,
                budget,
                ..
            } => write!(
                f,
                "candidate set at level {level} needs ~{estimated_bytes} bytes, budget is {budget}"
            ),
            FsgError::Cancelled => write!(f, "mining run was cancelled"),
            FsgError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for FsgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_resolution() {
        assert_eq!(Support::Count(5).resolve(100), 5);
        assert_eq!(Support::Count(0).resolve(100), 1);
        assert_eq!(Support::Fraction(0.05).resolve(100), 5);
        assert_eq!(Support::Fraction(0.05).resolve(53), 3); // ceil(2.65)
        assert_eq!(Support::Fraction(1.0).resolve(10), 10);
        assert_eq!(Support::Fraction(0.001).resolve(10), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fraction() {
        Support::Fraction(1.5).resolve(10);
    }

    #[test]
    fn config_builders() {
        let c = FsgConfig::default()
            .with_support(Support::Count(3))
            .with_max_edges(4)
            .with_memory_budget(1 << 20);
        assert_eq!(c.min_support, Support::Count(3));
        assert_eq!(c.max_edges, 4);
        assert_eq!(c.memory_budget, Some(1 << 20));
        assert!(
            c.tid_bitsets && c.fingerprint_filter,
            "techniques default on"
        );
        let off = c.with_tid_bitsets(false).with_fingerprint_filter(false);
        assert!(!off.tid_bitsets && !off.fingerprint_filter);
    }

    #[test]
    fn stats_totals() {
        let s = MiningStats {
            candidates_per_level: vec![3, 5],
            frequent_per_level: vec![2, 1],
            ..Default::default()
        };
        assert_eq!(s.total_candidates(), 8);
        assert_eq!(s.total_frequent(), 3);
    }
}
