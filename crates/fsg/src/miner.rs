//! The level-wise (Apriori) frequent-subgraph miner.
//!
//! Mirrors FSG's structure: find frequent single edges, then repeatedly
//! generate (k+1)-edge candidates from frequent k-edge patterns, prune by
//! downward closure, and count support by subgraph isomorphism against
//! the transactions. "A subgraph g occurs in a graph t if g is isomorphic
//! to t' ⊆ t, where isomorphism is defined to include matching the labels
//! as well as the vertex/edge structure."
//!
//! Differences from the original implementation (see DESIGN.md):
//! candidate generation is single-edge extension (complete for connected
//! patterns) instead of core joining, and pattern identity uses
//! invariant-hash + exact-isomorphism classes instead of canonical codes.

use crate::embed::{grow_store, level1_store, seed_cap, txn_cap, EmbStore, Grown};
use crate::extend::{closure_sub_patterns, extend_pattern, EdgeVocab, PairFilter};
use crate::session::IncrCtx;
use crate::tidset::{self, TidBitset};
use crate::types::{FrequentPattern, FsgConfig, FsgError, FsgOutput, MiningStats};
use tnet_exec::Exec;
use tnet_graph::canon::IsoClassMap;
use tnet_graph::fingerprint::{graph_fingerprints, may_embed};
use tnet_graph::frozen::TxnSet;
use tnet_graph::graph::{ELabel, Graph, VLabel};
use tnet_graph::hash::{FxHashMap, FxHashSet};
use tnet_graph::iso::{derive_extension, Extension, Find, Matcher};
use tnet_graph::view::{GraphView, TxnSource};

/// Per-candidate memory estimate: arena storage for a small pattern graph
/// (each vertex carries two adjacency `Vec`s plus their heap blocks),
/// iso-class map overhead, and a TID vector. Calibrated against observed
/// RSS of large candidate sets; the budget models the paper's 1 GB Sparc,
/// not this host.
fn candidate_bytes(vertices: usize, edges: usize, tids: usize) -> usize {
    256 + vertices * 110 + edges * 48 + tids * 4
}

/// Per-candidate counter deltas, folded into [`MiningStats`] in candidate
/// order.
#[derive(Default)]
struct VerdictStats {
    iso_tests: usize,
    embeddings_extended: usize,
    embeddings_spilled: usize,
    tid_intersection_skips: usize,
    fingerprint_rejects: usize,
    bitset_intersections: usize,
}

/// Per-candidate verdict from the parallel evaluation stage. Folding
/// these back into `stats`/`next` in candidate order keeps the output
/// byte-identical to the sequential path.
enum Verdict {
    /// Failed the downward-closure check (after passing the TID
    /// intersection gate, whose counter deltas it carries).
    Pruned(VerdictStats),
    /// Survived closure; support counted by embedding propagation (or
    /// scratch VF2 when `embedding_cap == 0`). `stores[i]` belongs to
    /// `tids[i]` and is empty in scratch mode. `exact` marks a complete
    /// count — `tids` is the candidate's entire support set, not a
    /// partial list abandoned by an early gate or infeasibility exit —
    /// and gates admission to the session's candidate log.
    Counted {
        tids: Vec<u32>,
        stores: Vec<EmbStore>,
        stats: VerdictStats,
        exact: bool,
    },
}

/// Ascending-sorted TID list intersection.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Mines all frequent connected subgraphs of `transactions` on the
/// current thread. Equivalent to [`mine_with`] on a sequential pool.
///
/// Transactions must be simple graphs (no parallel `(src, dst, label)`
/// triples) — run [`Graph::dedup_edges`] first if needed; this matches
/// the paper's preprocessing ("FSG operates on graphs, not multigraphs").
///
/// # Errors
/// [`FsgError::MemoryBudgetExceeded`] when a candidate level outgrows the
/// configured budget.
pub fn mine(transactions: &[Graph], cfg: &FsgConfig) -> Result<FsgOutput, FsgError> {
    mine_with(transactions, cfg, &Exec::sequential())
}

/// Mines all frequent connected subgraphs of `transactions`, evaluating
/// each level's candidates (closure check + VF2 support counting) across
/// `exec`'s workers.
///
/// Freezes the transactions into a [`TxnSet`] (contiguous CSR arenas with
/// label-sorted adjacency) before mining — support counting then
/// binary-searches candidate edges instead of scanning adjacency lists.
/// The frozen snapshot preserves the builder's iteration order, so the
/// output is byte-identical to [`mine_arena_with`] and to itself at any
/// thread count.
///
/// # Errors
/// - [`FsgError::MemoryBudgetExceeded`] when a candidate level outgrows
///   the configured budget. The handle's [`tnet_exec::CancelToken`] is
///   cancelled first, so siblings sharing the token stop promptly.
/// - [`FsgError::Cancelled`] when `exec` (or an ancestor handle) is
///   cancelled externally mid-run.
pub fn mine_with(
    transactions: &[Graph],
    cfg: &FsgConfig,
    exec: &Exec,
) -> Result<FsgOutput, FsgError> {
    let frozen = TxnSet::freeze(transactions);
    mine_source(&frozen, cfg, exec)
}

/// As [`mine_with`], but traverses the mutable arena representation
/// directly instead of freezing a CSR snapshot. Kept for differential
/// testing and the frozen-vs-arena benchmark; both paths produce
/// byte-identical output.
pub fn mine_arena_with(
    transactions: &[Graph],
    cfg: &FsgConfig,
    exec: &Exec,
) -> Result<FsgOutput, FsgError> {
    mine_source(transactions, cfg, exec)
}

/// The representation-generic miner core behind [`mine_with`] (frozen
/// [`TxnSet`]) and [`mine_arena_with`] (`&[Graph]`). Candidate generation
/// and result folding stay sequential and in candidate order, and every
/// [`TxnSource`] yields transactions whose iteration order matches the
/// builder's, so the output is identical across sources and thread
/// counts.
pub fn mine_source<T: TxnSource + ?Sized>(
    transactions: &T,
    cfg: &FsgConfig,
    exec: &Exec,
) -> Result<FsgOutput, FsgError> {
    mine_core(transactions, cfg, exec, None)
}

/// The full level-wise loop behind [`mine_source`] and the incremental
/// [`crate::session::MineSession`]. With `incr = None` this *is* the
/// stateless miner. With an [`IncrCtx`], candidate generation runs
/// unchanged (so candidate order — and therefore output order — is
/// identical to the stateless path), but support counting consults the
/// session's cached lattice first: a cached candidate's overlap
/// support is reused verbatim and only the added transaction region is
/// intersected and searched, with embedding propagation still on.
/// Both modes compute the exact same support sets, so the output is
/// byte-identical by construction.
pub(crate) fn mine_core<T: TxnSource + ?Sized>(
    transactions: &T,
    cfg: &FsgConfig,
    exec: &Exec,
    incr: Option<&IncrCtx>,
) -> Result<FsgOutput, FsgError> {
    if exec.is_cancelled() {
        return Err(FsgError::Cancelled);
    }
    // One candidate per chunk: candidate verification cost is wildly
    // uneven (a pruned candidate is a TID merge; a verified one is a VF2
    // sweep), so the finest grain balances best and each worker's TID
    // scan stays resident in L2.
    let exec = &exec.with_chunk_items(1);
    // Phase timers live on the sequential control path only (around the
    // parallel regions, never inside worker closures), which keeps the
    // span tree's registration order — and thus `--trace` output —
    // deterministic at any thread count.
    let span_total = exec.span().time("fsg");
    let span = span_total.span().clone();
    let min_support = cfg.min_support.resolve(transactions.txn_count());
    let mut stats = MiningStats::default();
    let mut all_frequent: Vec<FrequentPattern> = Vec::new();
    let level1_timer = span.time("level1");

    // Per-transaction edge-label histograms: a candidate needing k edges
    // of label l cannot occur in a transaction with fewer — an O(labels)
    // rejection that skips most of the expensive negative VF2 searches
    // on uniformly-vertex-labeled transportation graphs.
    let label_counts: Vec<FxHashMap<u32, usize>> = (0..transactions.txn_count())
        .map(|i| {
            let t = transactions.txn(i);
            let mut h: FxHashMap<u32, usize> = FxHashMap::default();
            for e in t.edges() {
                *h.entry(t.edge_label(e).0).or_insert(0) += 1;
            }
            h
        })
        .collect();

    // ---- Level 1: single-edge patterns --------------------------------
    // Keyed directly by (src label, edge label, dst label, is_loop);
    // cheaper than iso-class maps and exactly equivalent for one edge.
    let mut level1: FxHashMap<(u32, u32, u32, bool), Vec<u32>> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, u32, u32, bool)> = FxHashSet::default();
    for tid in 0..transactions.txn_count() {
        let t = transactions.txn(tid);
        seen.clear();
        for e in t.edges() {
            let (s, d, l) = t.edge(e);
            let key = (t.vertex_label(s).0, l.0, t.vertex_label(d).0, s == d);
            if seen.insert(key) {
                level1.entry(key).or_default().push(tid as u32);
            }
        }
    }
    stats.candidates_per_level.push(level1.len());
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut vocab: Vec<EdgeVocab> = Vec::new();
    for ((sl, el, dl, is_loop), tids) in level1 {
        if tids.len() < min_support {
            continue;
        }
        let mut g = Graph::new();
        let s = g.add_vertex(VLabel(sl));
        if is_loop {
            g.add_edge(s, s, ELabel(el));
        } else {
            let d = g.add_vertex(VLabel(dl));
            g.add_edge(s, d, ELabel(el));
            vocab.push(EdgeVocab {
                src: VLabel(sl),
                label: ELabel(el),
                dst: VLabel(dl),
            });
        }
        let mut tids = tids;
        tids.sort_unstable();
        frequent.push(FrequentPattern {
            graph: g,
            support: tids.len(),
            tids,
        });
    }
    // Loop vocabulary entries also drive extensions (self-loop labels).
    for p in &frequent {
        let e = p.graph.edges().next().unwrap();
        let (s, d, _) = p.graph.edge(e);
        if s == d {
            vocab.push(EdgeVocab {
                src: p.graph.vertex_label(s),
                label: p.graph.edge_label(e),
                dst: p.graph.vertex_label(d),
            });
        }
    }
    vocab.sort_by_key(|v| (v.src, v.label, v.dst));
    vocab.dedup();
    stats.frequent_per_level.push(frequent.len());
    drop(level1_timer);

    // Embedding stores for the current level, parallel to `frequent`
    // (`stores[i][k]` covers `frequent[i].tids[k]`). Only the frontier
    // level is retained; finished levels keep just their TID lists.
    // Incremental windows (a session context carrying a cached lattice)
    // keep propagation on too: a cached candidate's overlap support is
    // reused verbatim and its overlap stores are primed empty-inexact,
    // so descendants route through the existing unverified-miss
    // machinery (alternate anchors, then a scratch settle that harvests
    // seeds) exactly where overlap embeddings are genuinely needed.
    let cap = cfg.embedding_cap;
    let mut stores: Vec<Vec<EmbStore>> = if cap > 0 && cfg.max_edges > 1 {
        let _t = span.time("embed_seed");
        frequent
            .iter()
            .map(|p| level1_store(p, transactions, cap, &mut stats.embeddings_spilled))
            .collect()
    } else {
        Vec::new()
    };
    stats.soa_bytes = stores.iter().flatten().map(|s| s.byte_len()).sum();
    // Pre-register the per-level phases so they render in pipeline order
    // even if a future refactor times them from racing contexts.
    span.child("candidate_gen");
    span.child("support_count");

    // ---- Levels 2..max ---------------------------------------------------
    let mut level = 1usize;
    let mut pair_filter: Option<PairFilter> = None;
    while !frequent.is_empty() && level < cfg.max_edges {
        level += 1;
        if level == 3 {
            // Every adjacent edge pair in a candidate is a connected
            // 2-edge subgraph, so the level-2 frequent set bounds which
            // extensions can survive closure — encode it once and filter
            // at generation time, before any clone/hash/closure work.
            pair_filter = Some(PairFilter::build(frequent.iter().map(|p| &p.graph)));
        }
        // A deadline or sibling abort may land between levels; checking
        // here keeps long multi-level mines responsive to both.
        if exec.is_cancelled() {
            return Err(FsgError::Cancelled);
        }
        tnet_exec::failpoint::hit("fsg::candidate_gen").map_err(FsgError::Fault)?;
        let gen_timer = span.time("candidate_gen");
        // Candidate generation with the running memory estimate.
        let mut candidates: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        let mut estimated = 0usize;
        for (idx, p) in frequent.iter().enumerate() {
            extend_pattern(&p.graph, &vocab, idx, pair_filter.as_ref(), &mut candidates);
            estimated = candidates.len() * candidate_bytes(level + 1, level, min_support.max(16));
            if let Some(budget) = cfg.memory_budget {
                if estimated > budget {
                    stats.peak_candidate_bytes = stats.peak_candidate_bytes.max(estimated);
                    all_frequent.extend(frequent);
                    finalize(&mut all_frequent);
                    // Signal any work sharing this token (sibling
                    // repetitions, report sections) to stop: the budget
                    // models one machine's memory, not one call's.
                    exec.cancel();
                    stats.record_into(exec.metrics());
                    return Err(FsgError::MemoryBudgetExceeded {
                        level,
                        estimated_bytes: estimated,
                        budget,
                        partial_stats: Box::new(stats),
                    });
                }
            }
        }
        stats.peak_candidate_bytes = stats.peak_candidate_bytes.max(estimated);
        stats.candidates_per_level.push(candidates.len());
        drop(gen_timer);
        let support_timer = span.time("support_count");

        // Downward closure + support counting.
        // A "frequent index" for closure checks on the previous level.
        let mut prev_index: IsoClassMap<usize> = IsoClassMap::new();
        for (i, p) in frequent.iter().enumerate() {
            prev_index.insert(p.graph.clone(), i);
        }
        // Bitset TID lists for parents dense enough to cross over (see
        // `tidset::use_bitset`): the all-parents intersection then ANDs
        // words instead of merging sorted lists. Sparse parents keep
        // `None` and their candidates fall back to the sorted path.
        let txn_count = transactions.txn_count();
        let bitsets: Vec<Option<TidBitset>> = if cfg.tid_bitsets {
            frequent
                .iter()
                .map(|p| {
                    tidset::use_bitset(p.tids.len(), txn_count)
                        .then(|| TidBitset::from_sorted(&p.tids, txn_count))
                })
                .collect()
        } else {
            Vec::new()
        };
        // Evaluate candidates in parallel: each verdict is a pure
        // function of (candidate, previous level, transactions), and the
        // fold below walks verdicts in candidate order — the costly VF2
        // searches fan out, the bookkeeping stays deterministic.
        let cand_list: Vec<(Graph, Vec<usize>)> = candidates.into_iter_pairs().collect();
        let last_level = level == cfg.max_edges;
        let verdicts = exec
            .try_par_map(&cand_list, |(candidate, parents)| {
                let mut vstats = VerdictStats::default();
                // Downward closure bounds the supporting set by *every*
                // parent's TID list, not just the smallest one's:
                // intersect them all before touching any transaction.
                let mut distinct: Vec<usize> = parents.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let min_parent_len = distinct
                    .iter()
                    .map(|&i| frequent[i].tids.len())
                    .min()
                    .expect("candidate without parents");
                let mut tids: Vec<u32> = Vec::new();
                let mut new_stores: Vec<EmbStore> = Vec::new();
                // Incremental fast path: a cache hit already knows the
                // candidate's exact support over the overlap, so the
                // full-window intersection, both support gates, and the
                // closure canonicalizations are all skippable — only the
                // *added-region* intersection of the generating parents
                // matters, and that is a handful of word ANDs over the
                // tail of the window. The added region is then counted
                // exactly like the full path (the labeled block yields
                // the scan set). Skipping the closure check cannot
                // change the output: a candidate with an infrequent
                // sub-pattern is support-bounded by it, so it counts
                // below threshold and is dropped by the fold either way.
                // Overlap transactions get empty-inexact stores
                // (placeholders aligned with `tids`): children landing
                // there take the unverified-miss path below and
                // materialize embeddings only where genuinely needed.
                let inter: Vec<u32> = 'scan: {
                    if let Some(ic) = incr {
                        if ic.has_cache() {
                            if let Some(known) = ic.lookup(level, candidate) {
                                let alo = ic.added_lo;
                                let added: Vec<u32> = if distinct.len() > 1
                                    && cfg.tid_bitsets
                                    && distinct.iter().all(|&i| bitsets[i].is_some())
                                {
                                    let w0 = (alo / 64) as usize;
                                    let first = bitsets[distinct[0]].as_ref().unwrap().words();
                                    if w0 >= first.len() {
                                        Vec::new()
                                    } else {
                                        let mut acc = first[w0..].to_vec();
                                        acc[0] &= !0u64 << (alo % 64);
                                        for &pi in &distinct[1..] {
                                            tidset::and_words(
                                                &mut acc,
                                                &bitsets[pi].as_ref().unwrap().words()[w0..],
                                            );
                                            vstats.bitset_intersections += 1;
                                        }
                                        let base = (w0 as u32) * 64;
                                        tidset::materialize(&acc)
                                            .into_iter()
                                            .map(|t| t + base)
                                            .collect()
                                    }
                                } else {
                                    let t0 = &frequent[distinct[0]].tids;
                                    let mut added = t0[t0.partition_point(|&x| x < alo)..].to_vec();
                                    for &pi in &distinct[1..] {
                                        if added.is_empty() {
                                            break;
                                        }
                                        let t = &frequent[pi].tids;
                                        added = intersect_sorted(
                                            &added,
                                            &t[t.partition_point(|&x| x < alo)..],
                                        );
                                    }
                                    added
                                };
                                if added.is_empty() {
                                    ic.recount_skips
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    let stores = if cap > 0 && !last_level {
                                        (0..known.len())
                                            .map(|_| {
                                                EmbStore::from_rows(
                                                    candidate.vertex_count(),
                                                    Vec::new(),
                                                    false,
                                                )
                                            })
                                            .collect()
                                    } else {
                                        Vec::new()
                                    };
                                    return Verdict::Counted {
                                        tids: known,
                                        stores,
                                        stats: vstats,
                                        exact: true,
                                    };
                                }
                                ic.patterns_recounted
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                tids = known;
                                if cap > 0 && !last_level {
                                    for _ in 0..tids.len() {
                                        new_stores.push(EmbStore::from_rows(
                                            candidate.vertex_count(),
                                            Vec::new(),
                                            false,
                                        ));
                                    }
                                }
                                break 'scan added;
                            }
                        }
                    }
                    let inter: Vec<u32> = if distinct.len() > 1
                        && cfg.tid_bitsets
                        && distinct.iter().all(|&i| bitsets[i].is_some())
                    {
                        // Branchless word ANDs; materializing ascending
                        // reproduces the sorted merge's output exactly.
                        let mut acc = bitsets[distinct[0]].as_ref().unwrap().words().to_vec();
                        for &pi in &distinct[1..] {
                            tidset::and_words(&mut acc, bitsets[pi].as_ref().unwrap().words());
                            vstats.bitset_intersections += 1;
                        }
                        tidset::materialize(&acc)
                    } else {
                        let mut inter: Vec<u32> = frequent[distinct[0]].tids.clone();
                        for &pi in &distinct[1..] {
                            if inter.is_empty() {
                                break;
                            }
                            inter = intersect_sorted(&inter, &frequent[pi].tids);
                        }
                        inter
                    };
                    vstats.tid_intersection_skips = min_parent_len - inter.len();
                    // The intersection bounds support from above. When it is
                    // already below threshold the candidate cannot be
                    // frequent, so neither the closure canonicalizations nor
                    // any per-transaction work can change the outcome — this
                    // cheap word-AND test retires the bulk of the generated
                    // candidates on dense workloads.
                    if inter.len() < min_support {
                        return Verdict::Counted {
                            tids: Vec::new(),
                            stores: Vec::new(),
                            stats: vstats,
                            exact: false,
                        };
                    }
                    // Closure: every connected k-edge sub-pattern must be
                    // frequent (deleting the appended edge reproduces the
                    // generating parent, which already is). Checked after the
                    // intersection gate: each sub-pattern lookup costs a
                    // canonical form, the intersection costs a few word ANDs.
                    // The lookups also recover each sub-pattern's frequent
                    // index, so the supporting set can be narrowed further
                    // below: a transaction missing *any* sub-pattern cannot
                    // contain the candidate.
                    let mut closure_parents: Vec<usize> = Vec::new();
                    for sub in closure_sub_patterns(candidate) {
                        match prev_index.get(&sub) {
                            None => return Verdict::Pruned(vstats),
                            Some(&pi) => closure_parents.push(pi),
                        }
                    }
                    // Refine the supporting set with the closure parents the
                    // generation step didn't know about. Re-gating afterwards
                    // retires candidates whose sub-patterns never co-occur
                    // often enough — before any per-transaction search runs.
                    closure_parents.retain(|pi| !distinct.contains(pi));
                    closure_parents.sort_unstable();
                    closure_parents.dedup();
                    let inter: Vec<u32> = if closure_parents.is_empty() {
                        inter
                    } else if cfg.tid_bitsets
                        && closure_parents.iter().all(|&i| bitsets[i].is_some())
                    {
                        let mut acc = TidBitset::from_sorted(&inter, txn_count).words().to_vec();
                        for &pi in &closure_parents {
                            tidset::and_words(&mut acc, bitsets[pi].as_ref().unwrap().words());
                            vstats.bitset_intersections += 1;
                        }
                        tidset::materialize(&acc)
                    } else {
                        let mut inter = inter;
                        for &pi in &closure_parents {
                            if inter.is_empty() {
                                break;
                            }
                            inter = intersect_sorted(&inter, &frequent[pi].tids);
                        }
                        inter
                    };
                    vstats.tid_intersection_skips = min_parent_len - inter.len();
                    if inter.len() < min_support {
                        return Verdict::Counted {
                            tids: Vec::new(),
                            stores: Vec::new(),
                            stats: vstats,
                            exact: false,
                        };
                    }
                    break 'scan inter;
                };

                // Scratch-search machinery (search plan + edge-label
                // prefilter) is built lazily: with propagation on, most
                // candidates are settled entirely by embedding extension
                // and never need it.
                let build_scratch = || {
                    let mut need: FxHashMap<u32, usize> = FxHashMap::default();
                    for e in candidate.edges() {
                        *need.entry(candidate.edge_label(e).0).or_insert(0) += 1;
                    }
                    let fps = if cfg.fingerprint_filter {
                        graph_fingerprints(candidate)
                    } else {
                        Vec::new()
                    };
                    (Matcher::new(candidate), need, fps)
                };
                if cap == 0 {
                    // Propagation disabled: scratch VF2 per transaction.
                    let (matcher, need, fps) = build_scratch();
                    for &tid in &inter {
                        let counts = &label_counts[tid as usize];
                        if need
                            .iter()
                            .any(|(l, &k)| counts.get(l).copied().unwrap_or(0) < k)
                        {
                            continue;
                        }
                        let txn = transactions.txn(tid as usize);
                        if cfg.fingerprint_filter && !may_embed(&fps, &txn) {
                            vstats.fingerprint_rejects += 1;
                            continue;
                        }
                        vstats.iso_tests += 1;
                        if matcher.matches(&txn) {
                            tids.push(tid);
                        }
                    }
                    return Verdict::Counted {
                        tids,
                        stores: new_stores,
                        stats: vstats,
                        exact: true,
                    };
                }

                // The candidate's representative graph is parents[0]'s
                // graph plus one appended edge (IsoClassMap keeps the
                // first-inserted graph and parent indices are pushed in
                // generation order), so the growth step is recoverable
                // exactly and parent embeddings can be extended in place
                // of a fresh search.
                let p0 = parents[0];
                let ext = derive_extension(frequent[p0].graph.vertex_count(), candidate)
                    .expect("candidate is a one-edge extension of its first parent");
                let p0_tids = &frequent[p0].tids;
                let p0_stores = &stores[p0];
                let vc = candidate.vertex_count();
                // Alternate anchor parents for unverified misses: deleting
                // any other edge of the candidate yields another frequent
                // sub-pattern (closure holds) whose embedding list in the
                // transaction may be exact — growing *that* list settles
                // the candidate by extension, and an empty result there is
                // a proof of absence, no scratch search needed. Each entry
                // is (frequent index, growth step relative to that parent,
                // permutation from candidate slots to grown-row slots).
                // Built lazily: most candidates never hit an unverified
                // miss.
                let mut alts: Option<Vec<(usize, Extension, Vec<usize>)>> = None;
                let build_alts = || {
                    let edges: Vec<_> = candidate.edges().collect();
                    let mut out: Vec<(usize, Extension, Vec<usize>)> = Vec::new();
                    for (ei, &de) in edges.iter().enumerate() {
                        if ei + 1 == edges.len() {
                            // Deleting the appended edge reproduces
                            // parents[0] — the primary anchor that just
                            // failed to verify.
                            continue;
                        }
                        let keep: Vec<_> = edges.iter().copied().filter(|&x| x != de).collect();
                        let (sub, vmap) = candidate.edge_subgraph(&keep);
                        if !tnet_graph::traverse::is_connected(&sub) {
                            continue;
                        }
                        let Some(&pi) = prev_index.get(&sub) else {
                            continue;
                        };
                        let pg = &frequent[pi].graph;
                        // Iso witness sub -> parent graph: equal sizes
                        // make the monomorphism a bijection, giving the
                        // slot translation for stored rows.
                        let Some(phi) = Matcher::new(&sub).find_unpruned(pg, Find::AtMost(1)).pop()
                        else {
                            continue;
                        };
                        let phi = phi.as_row().to_vec();
                        let (cs, cd, el) = candidate.edge(de);
                        let pslot = |c| vmap.get(&c).map(|nv| phi[nv.index()]);
                        let mut perm = vec![0usize; vc];
                        for (old, new) in &vmap {
                            perm[old.index()] = phi[new.index()].index();
                        }
                        let ext = match (pslot(cs), pslot(cd)) {
                            (Some(ps), Some(pd)) => Extension::Close {
                                src: ps,
                                dst: pd,
                                elabel: el,
                            },
                            (Some(ps), None) if cs != cd => {
                                // The grown row appends the new vertex's
                                // image after the parent's slots.
                                perm[cd.index()] = pg.vertex_count();
                                Extension::NewDst {
                                    src: ps,
                                    elabel: el,
                                    vlabel: candidate.vertex_label(cd),
                                }
                            }
                            (None, Some(pd)) if cs != cd => {
                                perm[cs.index()] = pg.vertex_count();
                                Extension::NewSrc {
                                    dst: pd,
                                    elabel: el,
                                    vlabel: candidate.vertex_label(cs),
                                }
                            }
                            // An orphaned self-loop vertex is not a
                            // derivable one-edge growth; skip this anchor.
                            _ => continue,
                        };
                        out.push((pi, ext, perm));
                    }
                    out
                };
                let mut scratch: Option<(Matcher, FxHashMap<u32, usize>, Vec<u64>)> = None;
                let mut j = 0usize;
                let mut exact = true;
                for (seen, &tid) in inter.iter().enumerate() {
                    // Infeasibility early-exit: once the misses so far
                    // leave fewer remaining transactions than the support
                    // deficit, the candidate cannot reach threshold and
                    // the per-transaction work left (extensions, scratch
                    // settles) cannot change the verdict. The partial
                    // `tids`/`stores` are discarded by the fold below
                    // (and `exact = false` keeps them out of a session's
                    // candidate log).
                    if tids.len() + (inter.len() - seen) < min_support {
                        exact = false;
                        break;
                    }
                    while p0_tids[j] < tid {
                        j += 1;
                    }
                    debug_assert_eq!(p0_tids[j], tid);
                    let txn = transactions.txn(tid as usize);
                    // At the final level no child stores are consumed, so
                    // the first occurrence settles support (witness-only).
                    match grow_store(
                        &txn,
                        &p0_stores[j],
                        &ext,
                        cap,
                        last_level,
                        &mut vstats.embeddings_extended,
                        &mut vstats.embeddings_spilled,
                    ) {
                        Grown::Absent => {}

                        Grown::Unverified => {
                            // Truncated seeds found nothing — an
                            // unverified "no". Try the other closure
                            // parents first: an exact list settles by
                            // extension, and even an inexact one can
                            // still witness. Only when every anchor
                            // stays unverified does the scratch
                            // existence check run.
                            let alts = alts.get_or_insert_with(build_alts);
                            let mut settled = false;
                            for (pi, aext, perm) in alts.iter() {
                                let Ok(jj) = frequent[*pi].tids.binary_search(&tid) else {
                                    // The sub-pattern itself is absent
                                    // from this transaction, so the
                                    // candidate is too.
                                    settled = true;
                                    break;
                                };
                                match grow_store(
                                    &txn,
                                    &stores[*pi][jj],
                                    aext,
                                    cap,
                                    last_level,
                                    &mut vstats.embeddings_extended,
                                    &mut vstats.embeddings_spilled,
                                ) {
                                    Grown::Absent => {
                                        settled = true;
                                        break;
                                    }
                                    Grown::Unverified => {}
                                    Grown::Witnessed { store } => {
                                        tids.push(tid);
                                        if let Some(st) = store {
                                            // Rows arrive in the alt
                                            // parent's slot order with
                                            // any appended vertex last;
                                            // permute into candidate
                                            // slot order.
                                            let mut flat = Vec::with_capacity(st.len() * vc);
                                            for row in st.rows() {
                                                for &p in perm.iter() {
                                                    flat.push(row[p]);
                                                }
                                            }
                                            new_stores
                                                .push(EmbStore::from_rows(vc, flat, st.exact));
                                        }
                                        settled = true;
                                        break;
                                    }
                                }
                            }
                            if settled {
                                continue;
                            }
                            let (matcher, need, fps) = scratch.get_or_insert_with(build_scratch);
                            let counts = &label_counts[tid as usize];
                            if need
                                .iter()
                                .any(|(l, &k)| counts.get(l).copied().unwrap_or(0) < k)
                            {
                                continue;
                            }
                            if cfg.fingerprint_filter && !may_embed(fps, &txn) {
                                vstats.fingerprint_rejects += 1;
                                continue;
                            }
                            vstats.iso_tests += 1;
                            if last_level {
                                // No descendant will consume a store;
                                // existence alone settles support.
                                if matcher.matches(&txn) {
                                    tids.push(tid);
                                }
                                continue;
                            }
                            // Harvest seeds from the settling search
                            // itself: the VF2 walk that proves existence
                            // re-anchors the embedding list, so
                            // descendants extend seeds instead of paying
                            // a scratch search per (pattern, txn) pair
                            // down the whole subtree. Bounded by the seed
                            // budget; if the search exhausts below the
                            // limit the list is complete — and therefore
                            // exact, restoring `Grown::Absent` fast
                            // paths for the descendants too.
                            let limit = seed_cap().min(txn_cap(cap, &txn));
                            let seeds = matcher.find_unpruned(&txn, Find::AtMost(limit));
                            if !seeds.is_empty() {
                                tids.push(tid);
                                let stride = candidate.vertex_count();
                                let mut flat = Vec::with_capacity(seeds.len() * stride);
                                for s in &seeds {
                                    flat.extend_from_slice(s.as_row());
                                }
                                new_stores.push(EmbStore::from_rows(
                                    stride,
                                    flat,
                                    seeds.len() < limit,
                                ));
                            }
                        }
                        Grown::Witnessed { store } => {
                            tids.push(tid);
                            if let Some(st) = store {
                                new_stores.push(st);
                            }
                        }
                    }
                }
                Verdict::Counted {
                    tids,
                    stores: new_stores,
                    stats: vstats,
                    exact,
                }
            })
            .map_err(|_| FsgError::Cancelled)?;

        let mut next: Vec<FrequentPattern> = Vec::new();
        let mut next_stores: Vec<Vec<EmbStore>> = Vec::new();
        let mut level_soa_bytes = 0usize;
        for ((candidate, _), verdict) in cand_list.into_iter().zip(verdicts) {
            match verdict {
                Verdict::Pruned(vstats) => {
                    stats.closure_pruned += 1;
                    stats.tid_intersection_skips += vstats.tid_intersection_skips;
                    stats.bitset_intersections += vstats.bitset_intersections;
                }
                Verdict::Counted {
                    tids,
                    stores: st,
                    stats: vstats,
                    exact,
                } => {
                    stats.iso_tests += vstats.iso_tests;
                    stats.embeddings_extended += vstats.embeddings_extended;
                    stats.embeddings_spilled += vstats.embeddings_spilled;
                    stats.tid_intersection_skips += vstats.tid_intersection_skips;
                    stats.fingerprint_rejects += vstats.fingerprint_rejects;
                    stats.bitset_intersections += vstats.bitset_intersections;
                    // Session runs log every exactly-counted candidate —
                    // frequent or not — so the next window can re-count
                    // just its added region instead of paying a fresh
                    // search for a candidate it already settled. This
                    // fold is sequential in candidate order, so the log
                    // is deterministic at any thread count. Infrequent
                    // candidates (dropped otherwise) move into the log;
                    // frequent ones are cloned since they also continue
                    // into the lattice.
                    if tids.len() >= min_support {
                        if exact {
                            if let Some(ic) = incr {
                                ic.log_candidate(level, &candidate, &tids);
                            }
                        }
                        next.push(FrequentPattern {
                            support: tids.len(),
                            graph: candidate,
                            tids,
                        });
                        if cap > 0 {
                            level_soa_bytes += st.iter().map(|s| s.byte_len()).sum::<usize>();
                            next_stores.push(st);
                        }
                    } else if exact {
                        if let Some(ic) = incr {
                            ic.log_candidate_owned(level, candidate, tids);
                        }
                    }
                }
            }
        }
        stats.soa_bytes = stats.soa_bytes.max(level_soa_bytes);
        stats.frequent_per_level.push(next.len());
        all_frequent.extend(std::mem::replace(&mut frequent, next));
        stores = next_stores;
        drop(support_timer);
    }
    all_frequent.extend(frequent);
    finalize(&mut all_frequent);
    stats.record_into(exec.metrics());
    Ok(FsgOutput {
        patterns: all_frequent,
        stats,
    })
}

fn finalize(patterns: &mut [FrequentPattern]) {
    patterns.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.graph.edge_count().cmp(&a.graph.edge_count()))
    });
}

/// Adapter with the signature Algorithm 1's `Find_Frequent_Graphs` slot
/// expects: returns `(pattern, support)` pairs, treating a memory-budget
/// abort as "no patterns from this repetition".
pub fn mine_for_algorithm1(transactions: &[Graph], cfg: &FsgConfig) -> Vec<(Graph, usize)> {
    mine_for_algorithm1_with(transactions, cfg, &Exec::sequential())
}

/// As [`mine_for_algorithm1`], counting support on `exec`'s workers.
pub fn mine_for_algorithm1_with(
    transactions: &[Graph],
    cfg: &FsgConfig,
    exec: &Exec,
) -> Vec<(Graph, usize)> {
    match mine_with(transactions, cfg, exec) {
        Ok(out) => out
            .patterns
            .into_iter()
            .map(|p| (p.graph, p.support))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::connected_sub_patterns;
    use crate::types::Support;
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn cfg(count: usize) -> FsgConfig {
        FsgConfig::default()
            .with_support(Support::Count(count))
            .with_max_edges(5)
    }

    #[test]
    fn single_edge_patterns_counted() {
        // 3 transactions: two contain label-1 edges, one contains label-2.
        let t1 = shapes::chain(1, 0, 1);
        let t2 = shapes::chain(2, 0, 1);
        let t3 = shapes::chain(1, 0, 2);
        let out = mine(&[t1, t2, t3], &cfg(2)).unwrap();
        // Only the label-1 single edge and the label-1 2-chain... the
        // 2-chain occurs in just t2 (support 1 < 2). So exactly one.
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns[0].support, 2);
        assert_eq!(out.patterns[0].tids, vec![0, 1]);
        assert_eq!(out.patterns[0].graph.edge_count(), 1);
    }

    #[test]
    fn finds_common_hub_pattern() {
        // Every transaction contains a 3-spoke hub; some have extras.
        let mut txns = Vec::new();
        for i in 0..4 {
            let mut g = shapes::hub_and_spoke(3 + i % 2, 0, 1);
            if i == 2 {
                let vs: Vec<_> = g.vertices().collect();
                g.add_edge(vs[1], vs[2], tnet_graph::graph::ELabel(7));
            }
            txns.push(g);
        }
        let out = mine(&txns, &cfg(4)).unwrap();
        let hub3 = shapes::hub_and_spoke(3, 0, 1);
        assert!(
            out.patterns.iter().any(|p| are_isomorphic(&p.graph, &hub3)),
            "3-spoke hub should be frequent in all 4 transactions"
        );
        // And its support is full.
        let p = out
            .patterns
            .iter()
            .find(|p| are_isomorphic(&p.graph, &hub3))
            .unwrap();
        assert_eq!(p.support, 4);
    }

    #[test]
    fn support_is_antitone_in_extension() {
        // Any frequent k+1 pattern's support can't exceed its sub-patterns'.
        let txns: Vec<Graph> = (0..6).map(|i| shapes::chain(2 + i % 3, 0, 1)).collect();
        let out = mine(&txns, &cfg(2)).unwrap();
        for p in &out.patterns {
            for sub in connected_sub_patterns(&p.graph) {
                let sup_sub = out
                    .patterns
                    .iter()
                    .find(|q| are_isomorphic(&q.graph, &sub))
                    .map(|q| q.support);
                if let Some(s) = sup_sub {
                    assert!(s >= p.support);
                }
            }
        }
    }

    #[test]
    fn respects_max_edges() {
        let txns: Vec<Graph> = (0..3).map(|_| shapes::chain(6, 0, 1)).collect();
        let out = mine(&txns, &cfg(3).with_max_edges(3)).unwrap();
        assert!(out.patterns.iter().all(|p| p.graph.edge_count() <= 3));
        assert!(out.patterns.iter().any(|p| p.graph.edge_count() == 3));
    }

    #[test]
    fn memory_budget_aborts() {
        // Many distinct vertex labels at min support 1: vocabulary and
        // candidate sets explode, tripping a small budget — the §6.1
        // reproduction.
        let mut txns = Vec::new();
        for t in 0..4 {
            let mut g = Graph::new();
            let vs: Vec<_> = (0..12).map(|i| g.add_vertex(VLabel(t * 12 + i))).collect();
            for i in 0..11 {
                g.add_edge(vs[i], vs[i + 1], ELabel(i as u32 % 3));
            }
            txns.push(g);
        }
        let cfg = FsgConfig::default()
            .with_support(Support::Count(1))
            .with_memory_budget(4_096);
        match mine(&txns, &cfg) {
            Err(FsgError::MemoryBudgetExceeded { level, .. }) => {
                assert!(level >= 2);
            }
            other => panic!("expected budget abort, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_trivial_inputs() {
        let out = mine(&[], &cfg(1)).unwrap();
        assert!(out.patterns.is_empty());
        let mut single = Graph::new();
        single.add_vertex(VLabel(0));
        let out = mine(&[single], &cfg(1)).unwrap();
        assert!(out.patterns.is_empty(), "no edges, no patterns");
    }

    #[test]
    fn self_loops_mined() {
        let mut txns = Vec::new();
        for _ in 0..3 {
            let mut g = Graph::new();
            let a = g.add_vertex(VLabel(1));
            let b = g.add_vertex(VLabel(1));
            g.add_edge(a, a, ELabel(0));
            g.add_edge(a, b, ELabel(2));
            txns.push(g);
        }
        let out = mine(&txns, &cfg(3)).unwrap();
        // Loop pattern frequent.
        let mut loop_pat = Graph::new();
        let v = loop_pat.add_vertex(VLabel(1));
        loop_pat.add_edge(v, v, ELabel(0));
        assert!(out
            .patterns
            .iter()
            .any(|p| are_isomorphic(&p.graph, &loop_pat)));
        // Combined loop + edge 2-pattern frequent too.
        let mut combo = loop_pat.clone();
        let b = combo.add_vertex(VLabel(1));
        let v0 = combo.vertices().next().unwrap();
        combo.add_edge(v0, b, ELabel(2));
        assert!(out
            .patterns
            .iter()
            .any(|p| are_isomorphic(&p.graph, &combo)));
    }

    #[test]
    fn stats_are_recorded() {
        let txns: Vec<Graph> = (0..3).map(|_| shapes::cycle(4, 0, 1)).collect();
        let out = mine(&txns, &cfg(3)).unwrap();
        assert_eq!(
            out.stats.candidates_per_level.len(),
            out.stats.frequent_per_level.len()
        );
        assert!(out.stats.embeddings_extended > 0);
        assert!(out.stats.total_frequent() >= out.patterns.len());
        // Scratch mode still exercises the iso-test counter.
        let txns: Vec<Graph> = (0..3).map(|_| shapes::cycle(4, 0, 1)).collect();
        let out = mine(&txns, &cfg(3).with_embedding_cap(0)).unwrap();
        assert!(out.stats.iso_tests > 0);
        assert_eq!(out.stats.embeddings_extended, 0);
    }

    #[test]
    fn propagated_matches_scratch() {
        // Mixed shapes: chains, hubs (twin symmetry), cycles, self-loops.
        let mut txns: Vec<Graph> = Vec::new();
        for i in 0..6 {
            let mut g = shapes::hub_and_spoke(2 + i % 3, 0, 1);
            let vs: Vec<_> = g.vertices().collect();
            if i % 2 == 0 {
                g.add_edge(vs[1], vs[0], ELabel(1));
            }
            g.add_edge(vs[0], vs[0], ELabel(2));
            txns.push(g);
        }
        for cap in [1, 2, 256] {
            let scratch = mine(&txns, &cfg(3).with_embedding_cap(0)).unwrap();
            let prop = mine(&txns, &cfg(3).with_embedding_cap(cap)).unwrap();
            assert_eq!(scratch.patterns.len(), prop.patterns.len(), "cap={cap}");
            for (a, b) in scratch.patterns.iter().zip(&prop.patterns) {
                assert_eq!(a.support, b.support, "cap={cap}");
                assert_eq!(a.tids, b.tids, "cap={cap}");
                assert!(are_isomorphic(&a.graph, &b.graph), "cap={cap}");
            }
        }
        // A tiny cap must exercise the spill path on the hub shapes.
        let tiny = mine(&txns, &cfg(3).with_embedding_cap(1)).unwrap();
        assert!(tiny.stats.embeddings_spilled > 0);
        assert!(tiny.stats.iso_tests > 0);
    }

    #[test]
    fn algorithm1_adapter() {
        let txns: Vec<Graph> = (0..3).map(|_| shapes::chain(2, 0, 1)).collect();
        let pairs = mine_for_algorithm1(&txns, &cfg(3));
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(g, s)| g.edge_count() >= 1 && *s == 3));
    }
}
