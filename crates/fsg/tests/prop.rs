//! Property tests for the FSG miner: mined supports must be exact (a
//! recount via independent isomorphism checks agrees), patterns must be
//! connected, and support must be antitone under pattern extension.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::iso::has_embedding;
use tnet_graph::traverse::is_connected;

type RawEdge = (usize, usize, u32);

fn raw_txn(max_v: usize, max_e: usize) -> impl Strategy<Value = (Vec<u32>, Vec<RawEdge>)> {
    (2..=max_v).prop_flat_map(move |nv| {
        let vlabels = proptest::collection::vec(0u32..2, nv);
        let edges = proptest::collection::vec((0..nv, 0..nv, 0u32..3), 1..=max_e);
        (vlabels, edges)
    })
}

fn build(vlabels: &[u32], edges: &[RawEdge]) -> Graph {
    let mut g = Graph::new();
    let vs: Vec<VertexId> = vlabels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
    for &(s, d, l) in edges {
        g.add_edge(vs[s], vs[d], ELabel(l));
    }
    // FSG inputs are simple graphs.
    g.dedup_edges();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Supports reported by the miner equal an independent recount, and
    /// every pattern is connected and meets the threshold.
    #[test]
    fn supports_are_exact(
        txns_raw in proptest::collection::vec(raw_txn(5, 7), 2..6),
        min_support in 1usize..3,
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = FsgConfig::default()
            .with_support(Support::Count(min_support))
            .with_max_edges(3);
        let out = mine(&txns, &cfg).unwrap();
        for p in &out.patterns {
            prop_assert!(is_connected(&p.graph));
            prop_assert!(p.support >= min_support);
            let recount = txns.iter().filter(|t| has_embedding(&p.graph, t)).count();
            prop_assert_eq!(
                recount, p.support,
                "support mismatch for {:?}", p.graph
            );
            // TID list agrees with support and is sorted unique.
            prop_assert_eq!(p.tids.len(), p.support);
            prop_assert!(p.tids.windows(2).all(|w| w[0] < w[1]));
            for &tid in &p.tids {
                prop_assert!(has_embedding(&p.graph, &txns[tid as usize]));
            }
        }
    }

    /// Mining is complete at level 1: every frequent single-edge class
    /// appears in the output.
    #[test]
    fn level1_complete(
        txns_raw in proptest::collection::vec(raw_txn(4, 5), 2..5),
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = FsgConfig::default()
            .with_support(Support::Count(1))
            .with_max_edges(1);
        let out = mine(&txns, &cfg).unwrap();
        // Every single edge of every transaction is covered by some
        // mined 1-edge pattern.
        for t in &txns {
            for e in t.edges() {
                let (sub, _) = t.edge_subgraph(&[e]);
                prop_assert!(
                    out.patterns.iter().any(|p| has_embedding(&p.graph, &sub)
                        && has_embedding(&sub, &p.graph)),
                    "missing 1-edge pattern"
                );
            }
        }
    }

    /// Propagated support counting is invisible in the output: any
    /// embedding cap — including caps of 1–2 that truncate nearly every
    /// list and force the inexact-seed re-verification path — mines the
    /// same patterns with the same TID lists as scratch VF2 (cap 0).
    #[test]
    fn embedding_propagation_matches_scratch(
        txns_raw in proptest::collection::vec(raw_txn(5, 8), 2..6),
        min_support in 1usize..3,
        cap in prop_oneof![Just(1usize), Just(2), Just(4), Just(256)],
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = |cap: usize| FsgConfig::default()
            .with_support(Support::Count(min_support))
            .with_max_edges(4)
            .with_embedding_cap(cap);
        let scratch = mine(&txns, &cfg(0)).unwrap();
        let prop = mine(&txns, &cfg(cap)).unwrap();
        prop_assert_eq!(prop.patterns.len(), scratch.patterns.len());
        for (a, b) in prop.patterns.iter().zip(&scratch.patterns) {
            prop_assert_eq!(&a.tids, &b.tids);
            prop_assert_eq!(a.support, b.support);
            prop_assert!(tnet_graph::iso::are_isomorphic(&a.graph, &b.graph));
        }
    }

    /// The bitset TID-intersection path is invisible in the output:
    /// mining with `tid_bitsets` on and off produces identical pattern
    /// sets, supports, and TID lists. The random universes here are
    /// small (≤ 64 transactions — one `u64` word), so every multi-parent
    /// join with the toggle on actually takes the bitset path.
    #[test]
    fn bitset_tid_intersection_matches_sorted(
        txns_raw in proptest::collection::vec(raw_txn(5, 8), 2..6),
        min_support in 1usize..3,
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = |on: bool| FsgConfig::default()
            .with_support(Support::Count(min_support))
            .with_max_edges(4)
            .with_tid_bitsets(on);
        let with = mine(&txns, &cfg(true)).unwrap();
        let without = mine(&txns, &cfg(false)).unwrap();
        prop_assert_eq!(with.patterns.len(), without.patterns.len());
        for (a, b) in with.patterns.iter().zip(&without.patterns) {
            prop_assert_eq!(&a.tids, &b.tids);
            prop_assert_eq!(a.support, b.support);
            prop_assert!(tnet_graph::iso::are_isomorphic(&a.graph, &b.graph));
        }
    }

    /// The fingerprint pre-filter is invisible in the output: a reject
    /// claims to *prove* no embedding exists, so mining with the filter
    /// on and off must agree exactly. Run at cap 0 (every support test
    /// is a scratch search) so the filter sits in front of every single
    /// isomorphism test the miner makes.
    #[test]
    fn fingerprint_filter_matches_unfiltered(
        txns_raw in proptest::collection::vec(raw_txn(5, 8), 2..6),
        min_support in 1usize..3,
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = |on: bool| FsgConfig::default()
            .with_support(Support::Count(min_support))
            .with_max_edges(4)
            .with_embedding_cap(0)
            .with_fingerprint_filter(on);
        let with = mine(&txns, &cfg(true)).unwrap();
        let without = mine(&txns, &cfg(false)).unwrap();
        prop_assert_eq!(with.patterns.len(), without.patterns.len());
        for (a, b) in with.patterns.iter().zip(&without.patterns) {
            prop_assert_eq!(&a.tids, &b.tids);
            prop_assert_eq!(a.support, b.support);
            prop_assert!(tnet_graph::iso::are_isomorphic(&a.graph, &b.graph));
        }
    }

    /// Raising the support threshold can only shrink the result set.
    #[test]
    fn support_threshold_monotone(
        txns_raw in proptest::collection::vec(raw_txn(4, 6), 3..6),
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let lo = mine(
            &txns,
            &FsgConfig::default().with_support(Support::Count(1)).with_max_edges(3),
        )
        .unwrap();
        let hi = mine(
            &txns,
            &FsgConfig::default().with_support(Support::Count(2)).with_max_edges(3),
        )
        .unwrap();
        prop_assert!(hi.patterns.len() <= lo.patterns.len());
        // Every high-support pattern is also found at the lower threshold.
        for p in &hi.patterns {
            prop_assert!(lo
                .patterns
                .iter()
                .any(|q| tnet_graph::iso::are_isomorphic(&p.graph, &q.graph)));
        }
    }
}
