//! Differential contract for the embedding spill path: with a tiny seed
//! cap forced, propagated support counting — spilled lists, truncated
//! seed prefixes, `Grown::Unverified` → scratch re-verification — must
//! mine exactly the pattern set (and supports) that pure scratch VF2
//! mines with propagation disabled.
//!
//! The seed-cap override is process-global, so this file holds the only
//! test that arms it; the override is cleared before any assertion can
//! escape (panics are caught and re-raised after the reset).

use tnet_fsg::embed::set_seed_cap_for_tests;
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, Graph, VLabel};

/// Hub-heavy transactions with uniform labels: a hub with `spokes`
/// out-edges carrying one (vlabel, elabel) pair. A two-edge fan pattern
/// has `spokes * (spokes - 1)` embeddings in each transaction — far past
/// the exact-list cap of `max(embedding_cap, edge_count)` — so every
/// exact list of fans overflows, spills, and is truncated to the seed
/// prefix.
fn hub_transactions(n: usize, spokes: usize) -> Vec<Graph> {
    (0..n)
        .map(|_| {
            let mut g = Graph::new();
            let hub = g.add_vertex(VLabel(0));
            for _ in 0..spokes {
                let v = g.add_vertex(VLabel(1));
                g.add_edge(hub, v, ELabel(7));
            }
            g
        })
        .collect()
}

#[test]
fn forced_spills_mine_identically_to_scratch() {
    // Seed budget of 2: once a list spills, only two seed embeddings
    // survive, so third-edge growth regularly comes back empty and the
    // miner must take the `Unverified` → scratch re-verification path.
    set_seed_cap_for_tests(2);
    let result = std::panic::catch_unwind(|| {
        let txns = hub_transactions(5, 30);
        let prop_cfg = FsgConfig::default()
            .with_support(Support::Count(4))
            .with_max_edges(3);
        let scratch_cfg = prop_cfg.clone().with_embedding_cap(0);
        let prop = mine(&txns, &prop_cfg).expect("propagated run");
        let scratch = mine(&txns, &scratch_cfg).expect("scratch run");
        assert!(
            prop.stats.embeddings_spilled > 0,
            "fixture must force spills, or this test proves nothing: {:?}",
            prop.stats
        );
        assert_eq!(
            scratch.stats.embeddings_spilled, 0,
            "cap 0 never stores lists"
        );
        assert_eq!(
            prop.patterns.len(),
            scratch.patterns.len(),
            "pattern counts diverged"
        );
        let mut scratch_classes: IsoClassMap<usize> = IsoClassMap::new();
        for p in &scratch.patterns {
            scratch_classes.insert(p.graph.clone(), p.support);
        }
        for p in &prop.patterns {
            assert_eq!(
                scratch_classes.get(&p.graph),
                Some(&p.support),
                "support diverged for a {}-edge pattern",
                p.graph.edge_count()
            );
        }
    });
    set_seed_cap_for_tests(0);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
