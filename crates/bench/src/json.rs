//! A tiny JSON value type: enough to write `BENCH_miners.json` and to
//! re-parse it for validation, with no dependencies. Strings are limited
//! to what the bench emits (no escape sequences beyond `\"` and `\\`).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a `BTreeMap` so serialization order is
/// deterministic — bench output diffs must come from numbers, not key
/// shuffles.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        use fmt::Write;
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers print without a trailing `.0`; everything else
                // keeps enough digits to round-trip the measurements.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{k}\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset the writer emits, which is all
    /// the validation step needs). Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut raw: Vec<u8> = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(raw).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => raw.push(b'"'),
                    Some(b'\\') => raw.push(b'\\'),
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                }
                *pos += 1;
            }
            c => {
                raw.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Json::obj([
            ("name", Json::Str("fsg".into())),
            ("wall_ms", Json::Num(12.5)),
            ("iso_tests", Json::Num(20.0)),
            ("exact", Json::Bool(true)),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x".into())]),
            ),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
