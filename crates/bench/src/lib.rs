//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one of the paper's tables or figures (see
//! DESIGN.md's per-experiment index). Datasets are generated once per
//! process and shared.

pub mod harness;
pub mod json;
pub mod obs_json;

use std::sync::OnceLock;
use tnet_data::model::Transaction;
use tnet_data::synth::{generate, SynthConfig};

/// The default benchmark scale: 2% of the paper's dataset, which keeps
/// every bench in seconds while preserving distribution shape.
pub const BENCH_SCALE: f64 = 0.02;

/// Transactions at [`BENCH_SCALE`], generated once.
pub fn bench_transactions() -> &'static [Transaction] {
    static DATA: OnceLock<Vec<Transaction>> = OnceLock::new();
    DATA.get_or_init(|| generate(&SynthConfig::scaled(BENCH_SCALE)).transactions)
}

/// Transactions at an arbitrary scale (not cached).
pub fn transactions_at(scale: f64, seed: u64) -> Vec<Transaction> {
    generate(&SynthConfig::scaled(scale).with_seed(seed)).transactions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_dataset_is_stable() {
        let a = bench_transactions();
        let b = bench_transactions();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }
}
