//! Trace export (`tnet-trace/v1`): converts a [`tnet_obs`] span-tree
//! snapshot plus a metrics snapshot into the bench crate's [`Json`]
//! value, and validates such documents on the way back in. The CLI's
//! `--trace-json` and `bench_miners`' embedded trace block both emit
//! this schema, so one validator covers both (see DESIGN.md §10).
//!
//! Document shape:
//!
//! ```json
//! {
//!   "schema": "tnet-trace/v1",
//!   "root": {"label": "mine", "nanos": 12345, "count": 1,
//!            "children": [ ...same shape... ]},
//!   "metrics": {"exec.tasks": 42, "fsg.iso_tests": 20, ...}
//! }
//! ```

use crate::json::Json;
use std::collections::BTreeMap;
use tnet_obs::SpanNode;

/// Schema tag written into (and required from) every trace document.
pub const TRACE_SCHEMA: &str = "tnet-trace/v1";

/// Builds a `tnet-trace/v1` document from a span-tree snapshot and a
/// metrics snapshot (the output of `MetricsRegistry::snapshot`).
pub fn trace_to_json(root: &SpanNode, metrics: &BTreeMap<String, u64>) -> Json {
    Json::obj([
        ("schema", Json::Str(TRACE_SCHEMA.into())),
        ("root", span_to_json(root)),
        (
            "metrics",
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ])
}

fn span_to_json(node: &SpanNode) -> Json {
    Json::obj([
        ("label", Json::Str(node.label.clone())),
        ("nanos", Json::Num(node.nanos as f64)),
        ("count", Json::Num(node.count as f64)),
        (
            "children",
            Json::Arr(node.children.iter().map(span_to_json).collect()),
        ),
    ])
}

/// Checks a parsed document against the `tnet-trace/v1` schema: the
/// schema tag, a well-formed span tree under `root` (every node carries
/// a string label and non-negative integer `nanos`/`count`), and a
/// `metrics` object of non-negative integers.
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == TRACE_SCHEMA => {}
        Some(Json::Str(s)) => {
            return Err(format!("unexpected schema '{s}' (want '{TRACE_SCHEMA}')"));
        }
        _ => return Err("missing 'schema' string".into()),
    }
    match doc.get("metrics") {
        Some(Json::Obj(m)) => {
            for (name, value) in m {
                if !is_counter(value) {
                    return Err(format!("metric '{name}' is not a non-negative integer"));
                }
            }
        }
        _ => return Err("missing 'metrics' object".into()),
    }
    let root = doc.get("root").ok_or("missing 'root' span")?;
    validate_span(root, "root")
}

fn is_counter(v: &Json) -> bool {
    matches!(v, Json::Num(n) if *n >= 0.0 && n.fract() == 0.0)
}

fn validate_span(node: &Json, path: &str) -> Result<(), String> {
    match node.get("label") {
        Some(Json::Str(_)) => {}
        _ => return Err(format!("{path}: missing 'label' string")),
    }
    for key in ["nanos", "count"] {
        match node.get(key) {
            Some(v) if is_counter(v) => {}
            _ => return Err(format!("{path}: '{key}' is not a non-negative integer")),
        }
    }
    match node.get("children") {
        Some(Json::Arr(children)) => {
            for (i, child) in children.iter().enumerate() {
                validate_span(child, &format!("{path}.children[{i}]"))?;
            }
            Ok(())
        }
        _ => Err(format!("{path}: missing 'children' array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_obs::Tracer;

    fn sample_trace() -> Json {
        let t = Tracer::new("mine");
        {
            let total = t.root().timer();
            let _ingest = total.span().time("ingest");
        }
        let mut metrics = BTreeMap::new();
        metrics.insert("fsg.iso_tests".to_string(), 20u64);
        metrics.insert("exec.tasks".to_string(), 4u64);
        trace_to_json(&t.snapshot(), &metrics)
    }

    #[test]
    fn round_trips_through_the_bench_parser() {
        let doc = sample_trace();
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        validate_trace(&back).unwrap();
    }

    #[test]
    fn validator_rejects_wrong_schema_and_shapes() {
        let mut doc = sample_trace();
        if let Json::Obj(m) = &mut doc {
            m.insert("schema".into(), Json::Str("other/v9".into()));
        }
        assert!(validate_trace(&doc)
            .unwrap_err()
            .contains("unexpected schema"));

        let doc = Json::obj([("schema", Json::Str(TRACE_SCHEMA.into()))]);
        assert!(validate_trace(&doc).unwrap_err().contains("metrics"));

        let mut doc = sample_trace();
        if let Json::Obj(m) = &mut doc {
            if let Some(Json::Obj(metrics)) = m.get_mut("metrics") {
                metrics.insert("bad".into(), Json::Num(-1.0));
            }
        }
        assert!(validate_trace(&doc)
            .unwrap_err()
            .contains("non-negative integer"));
    }

    #[test]
    fn validator_descends_into_children() {
        let bad_child = Json::obj([
            ("label", Json::Str("x".into())),
            ("nanos", Json::Num(1.0)),
            ("count", Json::Str("not a number".into())),
            ("children", Json::Arr(vec![])),
        ]);
        let doc = Json::obj([
            ("schema", Json::Str(TRACE_SCHEMA.into())),
            ("metrics", Json::Obj(BTreeMap::new())),
            (
                "root",
                Json::obj([
                    ("label", Json::Str("r".into())),
                    ("nanos", Json::Num(0.0)),
                    ("count", Json::Num(0.0)),
                    ("children", Json::Arr(vec![bad_child])),
                ]),
            ),
        ]);
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("root.children[0]"), "{err}");
        assert!(err.contains("count"), "{err}");
    }
}
