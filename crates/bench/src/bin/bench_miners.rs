//! Offline miner micro-bench: times FSG, gSpan, and SUBDUE on seeded
//! synthetic workloads and writes `BENCH_miners.json` — the start of the
//! repo's perf trajectory. No network, no criterion; run with
//!
//! ```text
//! cargo run --release -p tnet-bench --bin bench_miners -- --out BENCH_miners.json
//! ```
//!
//! Flags:
//! - `--smoke`        tiny single-sample run for CI (skips the large
//!   workload, keeps the deterministic `iso_tests` gate)
//! - `--out PATH`     output path (default `BENCH_miners.json`)
//! - `--seed N`       synthetic-dataset seed (default 42)
//! - `--validate PATH` parse an existing report, check all three miners
//!   and the embedded trace block are present, and exit — no benching
//! - `--validate-trace PATH` parse a standalone `tnet-trace/v1` document
//!   (the CLI's `--trace-json` output) and exit — no benching
//!
//! Every FSG/gSpan workload is run twice: with embedding propagation (the
//! default cap) and with `embedding_cap = 0` (scratch VF2, the
//! pre-optimization behavior), so each report carries its own
//! speedup-vs-scratch number. The process exits non-zero if the
//! propagated FSG run's `iso_tests` on the default workload regresses
//! past [`FSG_DEFAULT_ISO_GATE`] — wall-clock is recorded but never
//! gated, because shared-host timing noise (~40% observed) would make a
//! time gate flaky.

use std::process::ExitCode;
use std::time::Instant;
use tnet_bench::harness::{bench, Timing};
use tnet_bench::json::Json;
use tnet_bench::obs_json;
use tnet_core::experiments::structural::truncated_structural_graph;
use tnet_core::pipeline::Pipeline;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_exec::{Exec, MetricsRegistry, Span, Tracer};
use tnet_fsg::{
    mine, mine_arena_with, mine_neighborhoods, mine_source, mine_with, FsgConfig, NbhdConfig,
    Support,
};
use tnet_graph::frozen::{FrozenStats, TxnSet};
use tnet_graph::graph::Graph;
use tnet_graph::rng::StdRng;
use tnet_gspan::{mine_dfs, mine_dfs_with, GspanConfig};
use tnet_partition::single_graph::mine_single_graph;
use tnet_partition::split::{split_graph, Strategy};
use tnet_partition::{Granularity, TemporalOptions, WindowSpec};
use tnet_subdue::{discover, discover_with, SubdueConfig};

/// Regression gate for `stats.iso_tests` on the propagated default FSG
/// workload. The recorded scratch-VF2 count on this workload is 582;
/// propagation measures 20. The gate sits at a 5x drop so genuine
/// regressions trip it while leaving headroom for benign drift.
const FSG_DEFAULT_ISO_GATE: usize = 116;

/// `--validate` gate on the support-count microbench: frozen-CSR
/// traversal must stay within this factor of the arena path (best of N
/// in the same process, so the ratio is far less noisy than absolute
/// wall clock; the headroom absorbs shared-host jitter while still
/// catching a representation-level slowdown).
const SUPPORT_COUNT_RATIO_GATE: f64 = 1.5;

/// `--validate` floor on the per-technique off/on wall ratios in the
/// `support_count` block (`bitsets_off_over_on`,
/// `fingerprint_off_over_on`). A technique is allowed to be a wash on a
/// small workload, but if turning it *off* makes the miner this much
/// faster the technique has become a regression and the gate trips. The
/// floor sits well under 1.0 to absorb shared-host jitter.
const TECHNIQUE_RATIO_FLOOR: f64 = 0.6;

/// Historical baselines recorded on the development host (best of
/// three), kept in the report so the perf trajectory is visible without
/// digging through git history. The `scratch` generation predates
/// embedding propagation (PR 3); the `pre_layout` generation is the
/// propagated + frozen-CSR state just before the data-layout pass
/// (bitset TIDs, SoA stores, fingerprints, L2 chunking) landed.
const BASELINE_FSG_DEFAULT_WALL_MS: f64 = 3.82;
const BASELINE_FSG_DEFAULT_ISO_TESTS: usize = 582;
const BASELINE_FSG_LARGE_TXN_WALL_MS: f64 = 1050.6;
const BASELINE_FSG_LARGE_TXN_PRE_LAYOUT_WALL_MS: f64 = 185.5;
const BASELINE_SUBDUE_50V_PRE_LAYOUT_WALL_MS: f64 = 343.0;

struct Opts {
    smoke: bool,
    out: String,
    seed: u64,
    validate: Option<String>,
    validate_trace: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        smoke: false,
        out: "BENCH_miners.json".to_string(),
        seed: 42,
        validate: None,
        validate_trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--validate" => opts.validate = Some(args.next().ok_or("--validate needs a path")?),
            "--validate-trace" => {
                opts.validate_trace = Some(args.next().ok_or("--validate-trace needs a path")?)
            }
            // Cargo's bench runner appends `--bench`; tolerate it.
            "--bench" => {}
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// The shared FSG/gSpan workload: a synthetic OD graph split into
/// transaction subgraphs, exactly as `tnet mine` and the report pipeline
/// do it.
fn split_workload(scale: f64, seed: u64, k: usize) -> Vec<Graph> {
    let p = Pipeline::synthetic(scale, seed);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let mut rng = StdRng::seed_from_u64(4);
    split_graph(&g, k, Strategy::BreadthFirst, &mut rng)
}

fn fsg_row(
    name: &str,
    txns: &[Graph],
    support: usize,
    max_edges: usize,
    samples: usize,
) -> (Json, usize) {
    let cfg = |cap: usize| {
        FsgConfig::default()
            .with_support(Support::Count(support))
            .with_max_edges(max_edges)
            .with_embedding_cap(cap)
    };
    let prop_cfg = cfg(FsgConfig::default().embedding_cap);
    let scratch_cfg = cfg(0);
    let t: Timing = bench(&format!("fsg/{name}"), samples, || {
        mine(txns, &prop_cfg).unwrap()
    });
    let out = mine(txns, &prop_cfg).unwrap();
    let ts = bench(&format!("fsg/{name}/scratch"), samples, || {
        mine(txns, &scratch_cfg).unwrap()
    });
    let out_s = mine(txns, &scratch_cfg).unwrap();
    assert_eq!(
        out.patterns.len(),
        out_s.patterns.len(),
        "propagated and scratch runs must mine the same pattern set"
    );
    let row = Json::obj([
        ("workload", Json::Str(name.into())),
        ("wall_ms", Json::Num(t.best_ms())),
        ("wall_ms_scratch", Json::Num(ts.best_ms())),
        (
            "speedup_vs_scratch",
            Json::Num(ts.best_ms() / t.best_ms().max(1e-9)),
        ),
        ("iso_tests", Json::Num(out.stats.iso_tests as f64)),
        ("iso_tests_scratch", Json::Num(out_s.stats.iso_tests as f64)),
        (
            "embeddings_extended",
            Json::Num(out.stats.embeddings_extended as f64),
        ),
        (
            "embeddings_spilled",
            Json::Num(out.stats.embeddings_spilled as f64),
        ),
        (
            "peak_candidate_bytes",
            Json::Num(out.stats.peak_candidate_bytes as f64),
        ),
        (
            "fingerprint_rejects",
            Json::Num(out.stats.fingerprint_rejects as f64),
        ),
        (
            "fingerprint_rejects_scratch",
            Json::Num(out_s.stats.fingerprint_rejects as f64),
        ),
        (
            "bitset_intersections",
            Json::Num(out.stats.bitset_intersections as f64),
        ),
        ("soa_bytes", Json::Num(out.stats.soa_bytes as f64)),
        ("patterns", Json::Num(out.patterns.len() as f64)),
    ]);
    (row, out.stats.iso_tests)
}

fn gspan_row(name: &str, txns: &[Graph], support: usize, max_edges: usize, samples: usize) -> Json {
    let cfg = |cap: usize| GspanConfig {
        min_support: Support::Count(support),
        max_edges,
        embedding_cap: cap,
        ..Default::default()
    };
    let prop_cfg = cfg(GspanConfig::default().embedding_cap);
    let scratch_cfg = cfg(0);
    let t = bench(&format!("gspan/{name}"), samples, || {
        mine_dfs(txns, &prop_cfg).unwrap()
    });
    let out = mine_dfs(txns, &prop_cfg).unwrap();
    let ts = bench(&format!("gspan/{name}/scratch"), samples, || {
        mine_dfs(txns, &scratch_cfg).unwrap()
    });
    let out_s = mine_dfs(txns, &scratch_cfg).unwrap();
    assert_eq!(
        out.patterns.len(),
        out_s.patterns.len(),
        "propagated and scratch runs must mine the same pattern set"
    );
    Json::obj([
        ("workload", Json::Str(name.into())),
        ("wall_ms", Json::Num(t.best_ms())),
        ("wall_ms_scratch", Json::Num(ts.best_ms())),
        (
            "speedup_vs_scratch",
            Json::Num(ts.best_ms() / t.best_ms().max(1e-9)),
        ),
        ("iso_tests", Json::Num(out.stats.iso_tests as f64)),
        ("iso_tests_scratch", Json::Num(out_s.stats.iso_tests as f64)),
        (
            "embeddings_extended",
            Json::Num(out.stats.embeddings_extended as f64),
        ),
        (
            "embeddings_spilled",
            Json::Num(out.stats.embeddings_spilled as f64),
        ),
        (
            "peak_candidate_bytes",
            Json::Num(out.stats.peak_live_bytes as f64),
        ),
        ("patterns", Json::Num(out.patterns.len() as f64)),
    ])
}

fn subdue_row(scale: f64, seed: u64, vertices: usize, samples: usize) -> Json {
    let p = Pipeline::synthetic(scale, seed);
    let txns = p.transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");
    let g = truncated_structural_graph(txns, &scheme, EdgeLabeling::GrossWeight, vertices);
    let cfg = SubdueConfig {
        max_size: 10,
        ..Default::default()
    };
    let name = format!("truncated_{vertices}v");
    let t = bench(&format!("subdue/{name}"), samples, || {
        discover(&g, &cfg).unwrap()
    });
    let out = discover(&g, &cfg).unwrap();
    Json::obj([
        ("workload", Json::Str(name)),
        ("wall_ms", Json::Num(t.best_ms())),
        ("expanded", Json::Num(out.expanded as f64)),
        (
            "embeddings_extended",
            Json::Num(out.stats.embeddings_extended as f64),
        ),
        (
            "embeddings_spilled",
            Json::Num(out.stats.embeddings_spilled as f64),
        ),
        (
            "patterns_derived",
            Json::Num(out.stats.patterns_derived as f64),
        ),
        ("best", Json::Num(out.best.len() as f64)),
    ])
}

/// Renders a pattern set to a canonical string so two runs can be
/// compared byte-for-byte, not just by count. Every differential in this
/// file (frozen vs arena, each technique toggled off vs on) goes through
/// this — the data-layout techniques are all supposed to be
/// output-invariant, and a byte mismatch here means one of them changed
/// results.
fn pattern_bytes(out: &tnet_fsg::FsgOutput) -> String {
    let mut s = String::new();
    for p in &out.patterns {
        s.push_str(&format!("{} {:?} {:?}\n", p.support, p.tids, p.graph));
    }
    s
}

/// Support-count microbench: the same FSG workload mined through the
/// frozen-CSR [`TxnSet`] and directly over the arena graphs. The TxnSet
/// is packed once outside the timed region, so the row isolates
/// traversal cost (candidate lookup + embedding extension); `freeze_ms`
/// reports the one-off packing cost separately. The two paths must mine
/// byte-identical pattern sets — support counting is
/// representation-blind.
///
/// The row also times the frozen path with each data-layout technique
/// individually toggled off (bitset TID intersection, fingerprint
/// pre-filter), reporting `*_off_over_on` wall ratios. Each toggle is
/// output-invariant, so the toggled runs must also be byte-identical;
/// `--validate` gates the ratios against [`TECHNIQUE_RATIO_FLOOR`].
fn support_count_row(
    name: &str,
    txns: &[Graph],
    support: usize,
    max_edges: usize,
    samples: usize,
) -> Json {
    let cfg = FsgConfig::default()
        .with_support(Support::Count(support))
        .with_max_edges(max_edges);
    let cfg_no_bitsets = cfg.clone().with_tid_bitsets(false);
    let cfg_no_fp = cfg.clone().with_fingerprint_filter(false);
    let exec = Exec::new(1);
    let freeze_before = FrozenStats::snapshot();
    let freeze_start = Instant::now();
    let frozen = TxnSet::freeze(txns);
    let freeze_ms = freeze_start.elapsed().as_secs_f64() * 1e3;
    let freeze_stats = FrozenStats::snapshot().since(&freeze_before);
    let tf = bench(&format!("support_count/{name}/frozen"), samples, || {
        mine_source(&frozen, &cfg, &exec).unwrap()
    });
    let mine_before = FrozenStats::snapshot();
    let out_f = mine_source(&frozen, &cfg, &exec).unwrap();
    let searches = FrozenStats::snapshot()
        .since(&mine_before)
        .adj_binary_searches;
    let t_nb = bench(&format!("support_count/{name}/no_bitsets"), samples, || {
        mine_source(&frozen, &cfg_no_bitsets, &exec).unwrap()
    });
    let out_nb = mine_source(&frozen, &cfg_no_bitsets, &exec).unwrap();
    let t_nf = bench(
        &format!("support_count/{name}/no_fingerprints"),
        samples,
        || mine_source(&frozen, &cfg_no_fp, &exec).unwrap(),
    );
    let out_nf = mine_source(&frozen, &cfg_no_fp, &exec).unwrap();
    let ta = bench(&format!("support_count/{name}/arena"), samples, || {
        mine_arena_with(txns, &cfg, &exec).unwrap()
    });
    let out_a = mine_arena_with(txns, &cfg, &exec).unwrap();
    let canon = pattern_bytes(&out_f);
    assert_eq!(
        canon,
        pattern_bytes(&out_a),
        "frozen and arena support counting must mine byte-identical patterns"
    );
    assert_eq!(
        canon,
        pattern_bytes(&out_nb),
        "bitset TID intersection must be output-invariant"
    );
    assert_eq!(
        canon,
        pattern_bytes(&out_nf),
        "fingerprint pre-filter must be output-invariant"
    );
    Json::obj([
        ("workload", Json::Str(name.into())),
        ("wall_ms_frozen", Json::Num(tf.best_ms())),
        ("wall_ms_arena", Json::Num(ta.best_ms())),
        (
            "frozen_over_arena",
            Json::Num(tf.best_ms() / ta.best_ms().max(1e-9)),
        ),
        ("wall_ms_no_bitsets", Json::Num(t_nb.best_ms())),
        (
            "bitsets_off_over_on",
            Json::Num(t_nb.best_ms() / tf.best_ms().max(1e-9)),
        ),
        ("wall_ms_no_fingerprints", Json::Num(t_nf.best_ms())),
        (
            "fingerprint_off_over_on",
            Json::Num(t_nf.best_ms() / tf.best_ms().max(1e-9)),
        ),
        (
            "bitset_intersections",
            Json::Num(out_f.stats.bitset_intersections as f64),
        ),
        (
            "fingerprint_rejects",
            Json::Num(out_f.stats.fingerprint_rejects as f64),
        ),
        ("soa_bytes", Json::Num(out_f.stats.soa_bytes as f64)),
        ("freeze_ms", Json::Num(freeze_ms)),
        ("freeze_count", Json::Num(freeze_stats.freeze_count as f64)),
        ("csr_bytes", Json::Num(freeze_stats.csr_bytes as f64)),
        ("adj_binary_searches", Json::Num(searches as f64)),
        ("patterns", Json::Num(out_f.patterns.len() as f64)),
    ])
}

/// Head-to-head on the same OD graph: Algorithm 1 (partition + FSG,
/// support = transactions containing the pattern) against the r-hop
/// neighborhood miner (support = centers whose induced neighborhood
/// embeds the pattern). The support definitions differ, so pattern
/// counts are reported side by side rather than asserted equal; the
/// row's point is the wall-clock story — partitioning replicates work
/// per repetition and per transaction, the neighborhood miner walks one
/// shared CSR. The scaled row (`scale_factor` ≥ 10, full runs only) is
/// the regime where per-transaction replication stops being viable.
fn partition_vs_neighborhood_row(name: &str, scale: f64, seed: u64, samples: usize) -> Json {
    let p = Pipeline::synthetic(scale, seed);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let exec = Exec::new(1);
    let fsg_cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(3)
        .with_memory_budget(512 << 20);
    // Two repetitions, as the CLI defaults: Algorithm 1 re-splits and
    // re-mines per repetition to recover patterns lost at partition
    // boundaries, so its wall scales with the repetition count.
    let mine_partition = || {
        mine_single_graph(
            &g,
            10,
            2,
            Strategy::BreadthFirst,
            42,
            &exec,
            |t, e| match mine_with(t, &fsg_cfg, e) {
                Ok(out) => out
                    .patterns
                    .into_iter()
                    .map(|p| (p.graph, p.support))
                    .collect(),
                Err(_) => Vec::new(),
            },
        )
    };
    let tp = bench(&format!("pvn/{name}/partition"), samples, mine_partition);
    let part = mine_partition();
    let nbhd_cfg = NbhdConfig::default()
        .with_radius(1)
        .with_support(Support::Count(4))
        .with_max_edges(3);
    let tn = bench(&format!("pvn/{name}/neighborhood"), samples, || {
        mine_neighborhoods(&g, &nbhd_cfg, &exec).unwrap()
    });
    let nb = mine_neighborhoods(&g, &nbhd_cfg, &exec).unwrap();
    // Patterns only the neighborhood miner surfaces. The two support
    // definitions differ, so this mixes genuine partition-boundary
    // losses with definitional gaps — reported as one recall-flavored
    // number, not gated.
    let neighborhood_only = nb
        .patterns
        .iter()
        .filter(|np| {
            !part
                .iter()
                .any(|pp| tnet_graph::iso::are_isomorphic(&pp.pattern, &np.graph))
        })
        .count();
    Json::obj([
        ("workload", Json::Str(name.into())),
        ("scale_factor", Json::Num(scale / 0.015)),
        ("vertices", Json::Num(g.vertex_count() as f64)),
        ("edges", Json::Num(g.edge_count() as f64)),
        ("wall_ms_partition", Json::Num(tp.best_ms())),
        ("wall_ms_neighborhood", Json::Num(tn.best_ms())),
        (
            "partition_over_neighborhood",
            Json::Num(tp.best_ms() / tn.best_ms().max(1e-9)),
        ),
        ("patterns_partition", Json::Num(part.len() as f64)),
        ("patterns_neighborhood", Json::Num(nb.patterns.len() as f64)),
        (
            "patterns_neighborhood_only",
            Json::Num(neighborhood_only as f64),
        ),
        ("nbhd_centers", Json::Num(nb.stats.centers as f64)),
        ("nbhd_iso_tests", Json::Num(nb.stats.iso_tests as f64)),
        (
            "nbhd_fingerprint_rejects",
            Json::Num(nb.stats.fingerprint_rejects as f64),
        ),
        ("nbhd_soa_bytes", Json::Num(nb.stats.soa_bytes as f64)),
    ])
}

/// Incremental-session benchmark: the same sliding-window workload
/// driven through one [`tnet_temporal::run_windows`] session twice —
/// delta re-counting on, then forced full per-window re-mining — at
/// hour, day, and week granularity. The two runs must mine
/// byte-identical per-window pattern sets (`identical` in the row;
/// `--validate` gates on it), and on the non-smoke workload the
/// incremental day run must beat the full run's wall clock
/// (`full_over_incremental` > 1, also gated).
fn temporal_incremental_row(
    name: &str,
    txns: &[tnet_data::Transaction],
    spec: WindowSpec,
    samples: usize,
) -> Json {
    let fsg_cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4)
        .with_memory_budget(512 << 20);
    let exec = Exec::new(1);
    let scheme = BinScheme::paper_defaults();
    let opts = TemporalOptions::default();
    let run = |incremental: bool| {
        let cfg = tnet_temporal::TemporalConfig::new(spec)
            .with_fsg(fsg_cfg.clone())
            .with_incremental(incremental);
        tnet_temporal::run_windows(txns, &scheme, &opts, &cfg, &exec).unwrap()
    };
    let ti = bench(&format!("temporal/{name}/incremental"), samples, || {
        run(true)
    });
    let inc = run(true);
    let tf = bench(&format!("temporal/{name}/full"), samples, || run(false));
    let full = run(false);
    let window_bytes = |r: &tnet_temporal::TemporalRun| {
        let mut s = String::new();
        for w in &r.windows {
            s.push_str(&format!("[{}, {})\n", w.txn_lo, w.txn_hi));
            s.push_str(&pattern_bytes(&w.output));
        }
        s
    };
    let identical = window_bytes(&inc) == window_bytes(&full);
    assert!(
        identical,
        "temporal/{name}: incremental and full window mining diverged"
    );
    Json::obj([
        ("granularity", Json::Str(name.into())),
        ("windows", Json::Num(inc.windows.len() as f64)),
        ("wall_ms_incremental", Json::Num(ti.best_ms())),
        ("wall_ms_full", Json::Num(tf.best_ms())),
        (
            "full_over_incremental",
            Json::Num(tf.best_ms() / ti.best_ms().max(1e-9)),
        ),
        (
            "incremental_windows",
            Json::Num(inc.session.incremental_windows as f64),
        ),
        (
            "patterns_recounted",
            Json::Num(inc.session.patterns_recounted as f64),
        ),
        ("recount_skips", Json::Num(inc.session.recount_skips as f64)),
        ("identical", Json::Bool(identical)),
    ])
}

fn temporal_incremental_rows(seed: u64, smoke: bool, samples: usize) -> Vec<Json> {
    let scale = if smoke { 0.01 } else { 0.05 };
    let txns =
        tnet_data::synth::generate(&tnet_data::synth::SynthConfig::scaled(scale).with_seed(seed))
            .transactions;
    vec![
        temporal_incremental_row(
            "hour",
            &txns,
            WindowSpec::new(Granularity::Hour, 48, 24).expect("valid spec"),
            samples,
        ),
        temporal_incremental_row(
            "day",
            &txns,
            WindowSpec::new(Granularity::Day, 7, 1).expect("valid spec"),
            samples,
        ),
        temporal_incremental_row(
            "week",
            &txns,
            WindowSpec::new(Granularity::Week, 2, 1).expect("valid spec"),
            samples,
        ),
    ]
}

/// One extra, untimed pass over every miner with a live tracer and
/// registry attached: the per-phase wall breakdown and the unified
/// counter namespace embedded in the report as a `tnet-trace/v1` block.
fn traced_block(default_txns: &[Graph], subdue_graph: &Graph) -> Json {
    let tracer = Tracer::new("bench_miners");
    let registry = MetricsRegistry::new();
    let exec = Exec::new(1).with_obs(tracer.root(), registry.clone());
    let fsg_cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4);
    let gspan_cfg = GspanConfig {
        min_support: Support::Count(4),
        max_edges: 4,
        ..Default::default()
    };
    let subdue_cfg = SubdueConfig {
        max_size: 10,
        ..Default::default()
    };
    let frozen_before = FrozenStats::snapshot();
    {
        let _total = exec.span().timer();
        mine_with(default_txns, &fsg_cfg, &exec).expect("traced fsg run");
        mine_dfs_with(default_txns, &gspan_cfg, &exec).expect("traced gspan run");
        discover_with(subdue_graph, &subdue_cfg, &exec).expect("traced subdue run");
    }
    exec.counters().record_into(&registry);
    FrozenStats::snapshot()
        .since(&frozen_before)
        .publish(&mut |name, v| registry.add(name, v));
    obs_json::trace_to_json(&tracer.snapshot(), &registry.snapshot())
}

/// Tracing off must cost nothing measurable: a million disabled-span
/// visits are one predictable branch each. A real regression — an
/// accidental clock read, allocation, or lock — blows past the returned
/// per-op cost by orders of magnitude (the gate sits at 250 ns/op).
fn disabled_span_ns_per_op() -> f64 {
    let span = Span::disabled();
    let iters = 1_000_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        let _g = span.time("x");
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

const DISABLED_SPAN_GATE_NS: f64 = 250.0;

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let miners = doc.get("miners").ok_or("report has no 'miners' object")?;
    for miner in ["fsg", "gspan", "subdue"] {
        match miners.get(miner) {
            Some(Json::Arr(rows)) if !rows.is_empty() => {}
            _ => return Err(format!("report is missing miner '{miner}'")),
        }
    }
    let trace = doc.get("trace").ok_or("report has no 'trace' block")?;
    obs_json::validate_trace(trace).map_err(|e| format!("trace block: {e}"))?;
    // Frozen-graph and data-layout counters must flow through the
    // unified namespace.
    let metrics = trace.get("metrics").ok_or("trace block has no 'metrics'")?;
    for key in [
        "graph.freeze_count",
        "graph.csr_bytes",
        "graph.adj_binary_searches",
        "graph.fingerprint_bytes",
        "exec.chunk_items",
        "fsg.fingerprint_rejects",
        "fsg.bitset_intersections",
        "fsg.soa_bytes",
        "gspan.fingerprint_rejects",
        "gspan.soa_bytes",
        "subdue.fingerprint_rejects",
    ] {
        if metrics.get(key).is_none() {
            return Err(format!("trace metrics missing '{key}'"));
        }
    }
    let sc = doc
        .get("support_count")
        .ok_or("report has no 'support_count' block")?;
    let num = |obj: &Json, key: &str| -> Result<f64, String> {
        match obj.get(key) {
            Some(Json::Num(r)) => Ok(*r),
            _ => Err(format!("support_count has no '{key}' number")),
        }
    };
    let ratio = num(sc, "frozen_over_arena")?;
    if ratio > SUPPORT_COUNT_RATIO_GATE {
        return Err(format!(
            "REGRESSION — frozen support counting is {ratio:.2}x arena, \
             gate is {SUPPORT_COUNT_RATIO_GATE}"
        ));
    }
    // Per-technique gates: each data-layout technique must still be
    // exercised (its counter is live) and must not have turned into a
    // slowdown (off/on wall ratio above the floor).
    for key in ["bitsets_off_over_on", "fingerprint_off_over_on"] {
        let r = num(sc, key)?;
        if r < TECHNIQUE_RATIO_FLOOR {
            return Err(format!(
                "REGRESSION — support_count {key} = {r:.2}; the technique is a \
                 slowdown (floor {TECHNIQUE_RATIO_FLOOR})"
            ));
        }
    }
    if num(sc, "bitset_intersections")? <= 0.0 {
        return Err("support_count.bitset_intersections is 0 — the bitset TID \
                    path is never taken on the bench workload"
            .into());
    }
    if num(sc, "soa_bytes")? <= 0.0 {
        return Err("support_count.soa_bytes is 0 — the SoA embedding stores \
                    are never populated on the bench workload"
            .into());
    }
    // Partition-vs-neighborhood head-to-head: the block must be
    // present, every row's neighborhood run must have completed (live
    // centers, recorded wall), and a full (non-smoke) report must carry
    // the ≥10× scaled row.
    let pvn = match doc.get("partition_vs_neighborhood") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("partition_vs_neighborhood block is empty".into()),
        _ => return Err("report has no 'partition_vs_neighborhood' block".into()),
    };
    let mut max_scale = 0.0f64;
    for row in pvn {
        let centers = num(row, "nbhd_centers")
            .map_err(|_| "partition_vs_neighborhood row missing 'nbhd_centers'".to_string())?;
        if centers <= 0.0 {
            return Err("partition_vs_neighborhood row has nbhd_centers = 0 — the \
                        neighborhood miner never enumerated a center"
                .into());
        }
        let wall = num(row, "wall_ms_neighborhood").map_err(|_| {
            "partition_vs_neighborhood row missing 'wall_ms_neighborhood'".to_string()
        })?;
        if wall <= 0.0 {
            return Err(
                "partition_vs_neighborhood row has wall_ms_neighborhood = 0 — \
                        the neighborhood run did not complete"
                    .into(),
            );
        }
        max_scale = max_scale.max(num(row, "scale_factor").unwrap_or(0.0));
    }
    let is_smoke = matches!(doc.get("smoke"), Some(Json::Bool(true)));
    // Incremental-session differential: every granularity row must have
    // mined byte-identical pattern sets on both paths, the sliding specs
    // must actually exercise the delta path, and on the full (non-smoke)
    // workload the incremental day run must beat full re-mining.
    let temporal = match doc.get("temporal_incremental") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("temporal_incremental block is empty".into()),
        _ => return Err("report has no 'temporal_incremental' block".into()),
    };
    for row in temporal {
        let gran = match row.get("granularity") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("temporal_incremental row missing 'granularity'".into()),
        };
        if !matches!(row.get("identical"), Some(Json::Bool(true))) {
            return Err(format!(
                "temporal_incremental/{gran}: incremental and full window \
                 mining are not byte-identical"
            ));
        }
        let inc_windows = num(row, "incremental_windows")
            .map_err(|_| format!("temporal_incremental/{gran} missing 'incremental_windows'"))?;
        if inc_windows <= 0.0 {
            return Err(format!(
                "temporal_incremental/{gran}: the sliding spec never took the \
                 delta re-counting path"
            ));
        }
        if !is_smoke && gran == "day" {
            let ratio = num(row, "full_over_incremental")?;
            if ratio <= 1.0 {
                return Err(format!(
                    "REGRESSION — temporal_incremental/day full_over_incremental \
                     = {ratio:.2}; delta re-counting is not beating full re-mining"
                ));
            }
        }
    }
    if !is_smoke && max_scale < 10.0 {
        return Err(format!(
            "full report's partition_vs_neighborhood block has no ≥10× scaled row \
             (max scale_factor {max_scale:.1})"
        ));
    }
    // Fingerprint reject-rate sanity: every FSG row must report the
    // counter, and the dense large_txn workload (present in non-smoke
    // reports) must actually reject something from the scratch path.
    if let Some(Json::Arr(rows)) = doc.get("miners").and_then(|m| m.get("fsg")) {
        for row in rows {
            let rejects = num(row, "fingerprint_rejects_scratch")
                .map_err(|_| "fsg row missing 'fingerprint_rejects_scratch'".to_string())?;
            let is_large = matches!(row.get("workload"), Some(Json::Str(s)) if s == "large_txn");
            if is_large && rejects <= 0.0 {
                return Err("fsg/large_txn fingerprint_rejects_scratch is 0 — the \
                            fingerprint pre-filter never fires on the dense workload"
                    .into());
            }
        }
    }
    println!(
        "{path}: valid, all three miners, trace block with graph.*/layout counters, \
         and support_count block present (frozen/arena = {ratio:.2})"
    );
    Ok(())
}

fn validate_trace_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    obs_json::validate_trace(&doc)?;
    println!("{path}: valid {} document", obs_json::TRACE_SCHEMA);
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_miners: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.validate {
        return match validate(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_miners: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = &opts.validate_trace {
        return match validate_trace_file(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_miners: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let samples = if opts.smoke { 1 } else { 3 };
    let default_txns = split_workload(0.015, opts.seed, 10);

    let (fsg_default, default_iso) = fsg_row("default", &default_txns, 4, 4, samples);
    let mut fsg_rows = vec![fsg_default];
    if !opts.smoke {
        // Large-transaction split: few, dense transactions — the shape
        // where scratch VF2 hurts most and propagation pays off hardest.
        let large_txns = split_workload(0.2, opts.seed, 4);
        fsg_rows.push(fsg_row("large_txn", &large_txns, 4, 4, samples).0);
    }
    let gspan_rows = vec![gspan_row("default", &default_txns, 4, 4, samples)];
    let support_count = support_count_row("default", &default_txns, 4, 4, samples);
    let mut pvn_rows = vec![partition_vs_neighborhood_row(
        "base", 0.015, opts.seed, samples,
    )];
    if !opts.smoke {
        // The ≥10× scaled OD graph: the regime where partitioning's
        // per-transaction replication stops being viable.
        pvn_rows.push(partition_vs_neighborhood_row(
            "scaled_10x",
            0.15,
            opts.seed,
            samples,
        ));
    }
    let temporal_rows = temporal_incremental_rows(opts.seed, opts.smoke, samples);
    let subdue_vertices = if opts.smoke { 25 } else { 50 };
    let subdue_rows = vec![subdue_row(0.015, opts.seed, subdue_vertices, samples)];

    // The per-phase trace block reuses the subdue workload's graph.
    let subdue_graph = {
        let p = Pipeline::synthetic(0.015, opts.seed);
        let scheme = BinScheme::fit_width_transactions(p.transactions()).expect("binning fits");
        truncated_structural_graph(
            p.transactions(),
            &scheme,
            EdgeLabeling::GrossWeight,
            subdue_vertices,
        )
    };
    let trace = traced_block(&default_txns, &subdue_graph);
    let disabled_ns = disabled_span_ns_per_op();

    let doc = Json::obj([
        ("schema", Json::Str("tnet-bench-miners/v1".into())),
        ("seed", Json::Num(opts.seed as f64)),
        ("smoke", Json::Bool(opts.smoke)),
        ("trace", trace),
        ("support_count", support_count),
        ("partition_vs_neighborhood", Json::Arr(pvn_rows)),
        ("temporal_incremental", Json::Arr(temporal_rows)),
        ("disabled_span_ns_per_op", Json::Num(disabled_ns)),
        (
            "miners",
            Json::obj([
                ("fsg", Json::Arr(fsg_rows)),
                ("gspan", Json::Arr(gspan_rows)),
                ("subdue", Json::Arr(subdue_rows)),
            ]),
        ),
        (
            "baseline",
            Json::obj([
                (
                    "note",
                    Json::Str(
                        "development-host baselines, best of 3: '*_wall_ms' are scratch-VF2 \
                         numbers predating embedding propagation; '*_pre_layout_wall_ms' are \
                         propagated + frozen-CSR numbers predating the data-layout pass \
                         (bitset TIDs, SoA stores, fingerprint filters, L2 chunking)"
                            .into(),
                    ),
                ),
                (
                    "fsg_default_wall_ms",
                    Json::Num(BASELINE_FSG_DEFAULT_WALL_MS),
                ),
                (
                    "fsg_default_iso_tests",
                    Json::Num(BASELINE_FSG_DEFAULT_ISO_TESTS as f64),
                ),
                (
                    "fsg_large_txn_wall_ms",
                    Json::Num(BASELINE_FSG_LARGE_TXN_WALL_MS),
                ),
                (
                    "fsg_large_txn_pre_layout_wall_ms",
                    Json::Num(BASELINE_FSG_LARGE_TXN_PRE_LAYOUT_WALL_MS),
                ),
                (
                    "subdue_truncated_50v_pre_layout_wall_ms",
                    Json::Num(BASELINE_SUBDUE_50V_PRE_LAYOUT_WALL_MS),
                ),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&opts.out, doc.pretty()) {
        eprintln!("bench_miners: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if disabled_ns > DISABLED_SPAN_GATE_NS {
        eprintln!(
            "bench_miners: REGRESSION — disabled span costs {disabled_ns:.1} ns/op, \
             gate is {DISABLED_SPAN_GATE_NS} (tracing off must be free)"
        );
        return ExitCode::FAILURE;
    }
    println!("disabled span: {disabled_ns:.2} ns/op (gate {DISABLED_SPAN_GATE_NS})");

    if default_iso > FSG_DEFAULT_ISO_GATE {
        eprintln!(
            "bench_miners: REGRESSION — fsg/default iso_tests = {default_iso}, \
             gate is {FSG_DEFAULT_ISO_GATE} (scratch baseline {BASELINE_FSG_DEFAULT_ISO_TESTS})"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "fsg/default iso_tests = {default_iso} (gate {FSG_DEFAULT_ISO_GATE}, \
         scratch baseline {BASELINE_FSG_DEFAULT_ISO_TESTS})"
    );
    ExitCode::SUCCESS
}
