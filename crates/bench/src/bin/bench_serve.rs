//! Serving-layer bench: starts an in-process `tnet-serve` daemon, drives
//! it with a mixed read/ingest workload over real TCP connections, and
//! writes `BENCH_serve.json` — sustained QPS plus client-measured
//! p50/p99 latency and the daemon's own counters. No network beyond
//! loopback, no criterion; run with
//!
//! ```text
//! cargo run --release -p tnet-bench --bin bench_serve -- --out BENCH_serve.json
//! ```
//!
//! Flags:
//! - `--smoke`         tiny run for CI (fewer clients, fewer requests)
//! - `--out PATH`      output path (default `BENCH_serve.json`)
//! - `--seed N`        synthetic-dataset seed (default 42)
//! - `--validate PATH` parse an existing report, check the schema and
//!   the correctness gates below, and exit — no benching
//!
//! Gates (checked after the run and again by `--validate`): the cache
//! must have recorded at least one hit, at least one generation must
//! have been published under ingest load, and no query may have errored
//! (the workload sends only well-formed requests). Wall-clock derived
//! numbers (QPS, p50/p99) are recorded but only sanity-checked
//! (`qps > 0`, `p50 <= p99`), never gated against a threshold —
//! shared-host timing noise would make such a gate flaky.
//!
//! A second pass measures durability overhead: the same acknowledged
//! ingest stream against a durable daemon under `--fsync always` and
//! `--fsync never`, followed by an offline recovery of the `always`
//! data directory. The `durability` block of the report records both
//! policies' ack QPS and p50/p99 plus WAL counters, and two hard gates:
//! every acknowledged record must be recovered, with zero checksum
//! errors.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use tnet_bench::json::Json;
use tnet_obs::MetricsRegistry;
use tnet_serve::{DurabilityConfig, FsyncPolicy, ServeConfig, WriterConfig};

struct Opts {
    smoke: bool,
    out: String,
    seed: u64,
    validate: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        smoke: false,
        out: "BENCH_serve.json".to_string(),
        seed: 42,
        validate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--validate" => opts.validate = Some(args.next().ok_or("--validate needs a path")?),
            // Cargo's bench runner appends `--bench`; tolerate it.
            "--bench" => {}
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Workload knobs, sized down for `--smoke`.
struct Workload {
    scale: f64,
    clients: usize,
    requests_per_client: usize,
    ingest_batches: usize,
    ingest_batch_size: usize,
    publish_interval: Duration,
    durability_batches: usize,
    durability_batch_size: usize,
}

impl Workload {
    fn new(smoke: bool) -> Workload {
        if smoke {
            Workload {
                scale: 0.005,
                clients: 2,
                requests_per_client: 60,
                ingest_batches: 6,
                ingest_batch_size: 16,
                publish_interval: Duration::from_millis(25),
                durability_batches: 8,
                durability_batch_size: 16,
            }
        } else {
            Workload {
                scale: 0.01,
                clients: 4,
                requests_per_client: 400,
                ingest_batches: 40,
                ingest_batch_size: 64,
                publish_interval: Duration::from_millis(50),
                durability_batches: 30,
                durability_batch_size: 64,
            }
        }
    }
}

/// The repeating read mix one client cycles through. Repeats of the
/// same cacheable request within a generation window are what drive
/// cache hits; the two support variants and the pattern query keep the
/// mix from being pure cache traffic.
const READ_MIX: &[&str] = &[
    r#"{"op":"ping"}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"support","labeling":"gw","labels":[0,1]}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"support","labeling":"td","labels":[1,0]}"#,
    r#"{"op":"pattern","partitions":4,"support":3,"max_edges":3,"reps":1,"top":10}"#,
];

/// One line of the ingest stream: `count` synthetic-looking records
/// with ids that cannot collide with generation 0.
fn ingest_line(batch: usize, count: usize) -> String {
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let n = (batch * count + i) as u64;
        records.push(format!(
            "{{\"id\":{},\"pickup\":733040,\"delivery\":733042,\
             \"olat\":{:.1},\"olon\":-88.0,\"dlat\":41.9,\"dlon\":-87.6,\
             \"distance\":{:.1},\"weight\":{:.1},\"hours\":9.0,\"mode\":\"TL\"}}",
            1_000_000 + n,
            40.0 + (n % 50) as f64 * 0.1,
            150.0 + (n % 7) as f64 * 40.0,
            9000.0 + (n % 11) as f64 * 900.0,
        ));
    }
    format!("{{\"op\":\"ingest\",\"records\":[{}]}}", records.join(","))
}

/// Sends `line`, reads the one-line reply, and fails loudly on an
/// `"ok":false` reply — the bench only issues well-formed requests, so
/// any error is a bug worth surfacing, not noise to swallow.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    // One write per request (Nagle + delayed-ACK would stall a
    // write-write-read pattern by ~40ms per round trip).
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    stream
        .write_all(&buf)
        .map_err(|e| format!("send failed: {e}"))?;
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv failed: {e}"))?;
    if reply.is_empty() {
        return Err("server closed the connection".into());
    }
    if !reply.contains("\"ok\":true") {
        return Err(format!("error reply to {line}: {}", reply.trim()));
    }
    Ok(reply)
}

/// Connects with jittered exponential backoff. A freshly started daemon
/// (or one briefly out of reader slots) refuses connections for a
/// moment; retrying with growing, jittered sleeps rides that out
/// without hammering the listener in lockstep with other clients.
fn connect(addr: std::net::SocketAddr) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    const MAX_ATTEMPTS: u32 = 6;
    let mut backoff = Duration::from_millis(10);
    let mut last_err = String::new();
    for attempt in 0..MAX_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let reader = BufReader::new(
                    stream
                        .try_clone()
                        .map_err(|e| format!("clone failed: {e}"))?,
                );
                return Ok((stream, reader));
            }
            Err(e) => last_err = e.to_string(),
        }
        if attempt + 1 < MAX_ATTEMPTS {
            // Deterministic jitter (SplitMix64 of attempt + port): 50% to
            // 150% of the base delay, then double the base.
            let mut z = (u64::from(attempt) << 16 | u64::from(addr.port()))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let jitter_pct = 50 + (z ^ (z >> 31)) % 101; // 50..=150
            std::thread::sleep(backoff * jitter_pct as u32 / 100);
            backoff *= 2;
        }
    }
    Err(format!(
        "connect failed after {MAX_ATTEMPTS} attempts: {last_err}"
    ))
}

/// Nearest-rank quantile over a sorted sample vector.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct RunResult {
    requests: usize,
    wall: Duration,
    p50_ns: u64,
    p99_ns: u64,
    metrics: Vec<(String, u64)>,
}

fn run_bench(opts: &Opts, w: &Workload) -> Result<RunResult, String> {
    let initial = tnet_data::synth::generate(
        &tnet_data::synth::SynthConfig::scaled(w.scale).with_seed(opts.seed),
    )
    .transactions;
    let initial_len = initial.len();
    let mut handle = tnet_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 256,
        writer: WriterConfig {
            publish_interval: w.publish_interval,
            batch: 256,
        },
        initial,
        trace: false,
        durability: None,
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    println!(
        "serving {initial_len} txns on {addr}; {} clients x {} requests + {} ingest batches",
        w.clients, w.requests_per_client, w.ingest_batches
    );

    let started = Instant::now();
    let result: Result<(Vec<Vec<u64>>, usize), String> = std::thread::scope(|scope| {
        // Ingest stream on its own connection: steady appends with an
        // occasional tombstone delete, so generations keep publishing
        // while the read clients hammer the cache.
        let ingest = scope.spawn(|| -> Result<usize, String> {
            let (mut stream, mut reader) = connect(addr)?;
            let mut sent = 0;
            for batch in 0..w.ingest_batches {
                roundtrip(
                    &mut stream,
                    &mut reader,
                    &ingest_line(batch, w.ingest_batch_size),
                )?;
                sent += w.ingest_batch_size;
                if batch % 4 == 3 {
                    let id = 1_000_000 + (batch * w.ingest_batch_size) as u64;
                    roundtrip(
                        &mut stream,
                        &mut reader,
                        &format!("{{\"op\":\"delete\",\"ids\":[{id}]}}"),
                    )?;
                }
                std::thread::sleep(w.publish_interval / 2);
            }
            Ok(sent)
        });
        let clients: Vec<_> = (0..w.clients)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let (mut stream, mut reader) = connect(addr)?;
                    let mut lat = Vec::with_capacity(w.requests_per_client);
                    for i in 0..w.requests_per_client {
                        // Offset each client's cursor so the mix
                        // interleaves rather than marching in lockstep.
                        let line = READ_MIX[(i + c) % READ_MIX.len()];
                        let t = Instant::now();
                        roundtrip(&mut stream, &mut reader, line)?;
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    Ok(lat)
                })
            })
            .collect();
        let mut all = Vec::new();
        for c in clients {
            all.push(c.join().map_err(|_| "client panicked")??);
        }
        let sent = ingest.join().map_err(|_| "ingest panicked")??;
        Ok((all, sent))
    });
    let (latencies, ingested) = result?;
    let wall = started.elapsed();

    // Counters from the daemon itself, via the wire protocol.
    let (mut stream, mut reader) = connect(addr)?;
    let trace = roundtrip(&mut stream, &mut reader, r#"{"op":"trace"}"#)?;
    drop(stream);
    let doc = Json::parse(&trace).map_err(|e| format!("bad trace reply: {e}"))?;
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(m)) => m
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0) as u64))
            .collect(),
        _ => return Err("trace reply has no metrics object".into()),
    };

    handle.shutdown();
    handle.wait();
    handle.join().map_err(|e| format!("join failed: {e}"))?;

    let mut merged: Vec<u64> = latencies.into_iter().flatten().collect();
    merged.sort_unstable();
    println!(
        "ingested {ingested} records alongside {} read requests",
        merged.len()
    );
    Ok(RunResult {
        requests: merged.len(),
        wall,
        p50_ns: quantile_ns(&merged, 0.50),
        p99_ns: quantile_ns(&merged, 0.99),
        metrics,
    })
}

/// Timing and WAL counters for one fsync policy.
struct PolicyResult {
    acks_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    wal_records: u64,
    wal_fsyncs: u64,
    fsync_p99_ns: u64,
}

struct DurabilityResult {
    always: PolicyResult,
    never: PolicyResult,
    acknowledged: u64,
    recovered: u64,
    checksum_errors: u64,
}

/// Runs an acknowledged ingest stream against a durable daemon under
/// one fsync policy and reports client-measured ack latency plus the
/// daemon's WAL counters. The data directory survives the run, so the
/// caller can recover from it afterwards.
fn run_policy(
    w: &Workload,
    fsync: FsyncPolicy,
    dir: &std::path::Path,
) -> Result<PolicyResult, String> {
    let mut handle = tnet_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        writer: WriterConfig {
            publish_interval: w.publish_interval,
            batch: 256,
        },
        initial: Vec::new(),
        trace: false,
        durability: Some(DurabilityConfig {
            data_dir: dir.to_path_buf(),
            fsync,
            // Snapshot once mid-stream so the bench exercises the
            // checkpoint + WAL-truncate path, not just appends.
            snapshot_every: (w.durability_batches * w.durability_batch_size / 2).max(1) as u64,
        }),
    })
    .map_err(|e| format!("cannot start durable server: {e}"))?;
    let addr = handle.addr();

    let (mut stream, mut reader) = connect(addr)?;
    let started = Instant::now();
    let mut lat = Vec::with_capacity(w.durability_batches);
    for batch in 0..w.durability_batches {
        let t = Instant::now();
        roundtrip(
            &mut stream,
            &mut reader,
            &ingest_line(batch, w.durability_batch_size),
        )?;
        lat.push(t.elapsed().as_nanos() as u64);
    }
    let wall = started.elapsed();
    let trace = roundtrip(&mut stream, &mut reader, r#"{"op":"trace"}"#)?;
    drop(stream);
    let doc = Json::parse(&trace).map_err(|e| format!("bad trace reply: {e}"))?;
    let m = |key: &str| -> u64 {
        doc.get("metrics")
            .and_then(|m| m.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    let result = PolicyResult {
        acks_per_sec: w.durability_batches as f64 / wall.as_secs_f64(),
        p50_ns: {
            lat.sort_unstable();
            quantile_ns(&lat, 0.50)
        },
        p99_ns: quantile_ns(&lat, 0.99),
        wal_records: m("wal.records"),
        wal_fsyncs: m("wal.fsyncs"),
        fsync_p99_ns: m("wal.fsync.p99_ns"),
    };
    handle.shutdown();
    handle.wait();
    handle.join().map_err(|e| format!("join failed: {e}"))?;
    Ok(result)
}

/// The durability overhead block: the same acknowledged ingest stream
/// under `--fsync always` and `--fsync never`, then an offline recovery
/// of the `always` directory proving every acknowledged record (minus
/// none — this stream has no deletes) comes back with zero checksum
/// errors.
fn run_durability(w: &Workload) -> Result<DurabilityResult, String> {
    let base = std::env::temp_dir().join(format!("tnet_bench_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let always_dir = base.join("always");
    let never_dir = base.join("never");
    std::fs::create_dir_all(&always_dir).map_err(|e| format!("mkdir: {e}"))?;
    std::fs::create_dir_all(&never_dir).map_err(|e| format!("mkdir: {e}"))?;

    let always = run_policy(w, FsyncPolicy::Always, &always_dir)?;
    let never = run_policy(w, FsyncPolicy::Never, &never_dir)?;

    let acknowledged = (w.durability_batches * w.durability_batch_size) as u64;
    let (recovered, checksum_errors) =
        match tnet_serve::recover(&always_dir, &MetricsRegistry::new()) {
            Ok(r) => (r.live.len() as u64, 0),
            Err(e) => {
                eprintln!("bench_serve: recovery failed: {e}");
                (0, 1)
            }
        };
    let _ = std::fs::remove_dir_all(&base);
    Ok(DurabilityResult {
        always,
        never,
        acknowledged,
        recovered,
        checksum_errors,
    })
}

/// The correctness gates shared by the post-run check and `--validate`.
/// Returns a REGRESSION message on the first violated gate.
fn check_gates(
    qps: f64,
    p50_ns: f64,
    p99_ns: f64,
    cache_hits: f64,
    generations: f64,
    query_errors: f64,
) -> Result<(), String> {
    if qps.is_nan() || qps <= 0.0 {
        return Err(format!("REGRESSION — qps is {qps}, must be positive"));
    }
    if p99_ns.is_nan() || p99_ns <= 0.0 || p50_ns > p99_ns {
        return Err(format!(
            "REGRESSION — latency quantiles inconsistent (p50 {p50_ns} ns, p99 {p99_ns} ns)"
        ));
    }
    if cache_hits < 1.0 {
        return Err(
            "REGRESSION — result cache recorded zero hits under a repeating read mix".into(),
        );
    }
    if generations < 1.0 {
        return Err("REGRESSION — no generation published under ingest load".into());
    }
    if query_errors > 0.0 {
        return Err(format!(
            "REGRESSION — {query_errors} query errors on a well-formed workload"
        ));
    }
    Ok(())
}

/// Durability gates: every acknowledged record must come back from
/// recovery, with zero checksum errors. Overhead numbers (always vs
/// never fsync) are recorded but never gated — they measure the host's
/// disk, not the code.
fn check_durability_gates(
    acknowledged: f64,
    recovered: f64,
    checksum_errors: f64,
) -> Result<(), String> {
    if recovered < acknowledged {
        return Err(format!(
            "REGRESSION — recovered {recovered} records but {acknowledged} were acknowledged"
        ));
    }
    if checksum_errors > 0.0 {
        return Err(format!(
            "REGRESSION — {checksum_errors} checksum errors during recovery"
        ));
    }
    Ok(())
}

fn metric(metrics: &[(String, u64)], name: &str) -> u64 {
    metrics
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == "tnet-bench-serve/v2" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let num = |block: &str, key: &str| -> Result<f64, String> {
        doc.get(block)
            .and_then(|b| b.get(key))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("report missing number '{block}.{key}'"))
    };
    check_gates(
        num("results", "qps")?,
        num("results", "p50_ns")?,
        num("results", "p99_ns")?,
        num("server", "cache_hits")?,
        num("server", "generations_published")?,
        num("server", "query_errors")?,
    )?;
    check_durability_gates(
        num("durability", "acknowledged_records")?,
        num("durability", "recovered_records")?,
        num("durability", "checksum_errors")?,
    )?;
    // The per-policy sub-blocks must at least be present and coherent.
    for policy in ["fsync_always", "fsync_never"] {
        let block = doc
            .get("durability")
            .and_then(|d| d.get(policy))
            .ok_or_else(|| format!("report missing 'durability.{policy}'"))?;
        let p50 = block.get("p50_ns").and_then(Json::as_f64).unwrap_or(-1.0);
        let p99 = block.get("p99_ns").and_then(Json::as_f64).unwrap_or(-1.0);
        if p50 < 0.0 || p99 < 0.0 || p50 > p99 {
            return Err(format!(
                "REGRESSION — durability.{policy} latency quantiles inconsistent \
                 (p50 {p50} ns, p99 {p99} ns)"
            ));
        }
    }
    println!(
        "{path}: valid, {:.0} qps sustained, p99 {:.2} ms, gates pass \
         ({:.0} records recovered, 0 checksum errors)",
        num("results", "qps")?,
        num("results", "p99_ns")? / 1e6,
        num("durability", "recovered_records")?,
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.validate {
        return match validate(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_serve: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let w = Workload::new(opts.smoke);
    let run = match run_bench(&opts, &w) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let durability = match run_durability(&w) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_serve: durability pass failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let qps = run.requests as f64 / run.wall.as_secs_f64();
    let server_fields: Vec<(&str, Json)> = [
        ("queries", "serve.queries"),
        ("query_errors", "serve.query_errors"),
        ("connections", "serve.connections"),
        ("records_ingested", "serve.records_ingested"),
        ("records_deleted", "serve.records_deleted"),
        ("generations_published", "serve.generations_published"),
        ("publish_failures", "serve.publish_failures"),
        ("cache_hits", "serve.cache_hits"),
        ("cache_misses", "serve.cache_misses"),
        ("cache_evictions", "serve.cache_evictions"),
        ("server_p50_ns", "serve.query_latency.p50_ns"),
        ("server_p99_ns", "serve.query_latency.p99_ns"),
    ]
    .iter()
    .map(|(out, key)| (*out, Json::Num(metric(&run.metrics, key) as f64)))
    .collect();

    let policy_block = |p: &PolicyResult| {
        Json::obj([
            ("acks_per_sec", Json::Num(p.acks_per_sec)),
            ("p50_ns", Json::Num(p.p50_ns as f64)),
            ("p99_ns", Json::Num(p.p99_ns as f64)),
            ("wal_records", Json::Num(p.wal_records as f64)),
            ("wal_fsyncs", Json::Num(p.wal_fsyncs as f64)),
            ("fsync_p99_ns", Json::Num(p.fsync_p99_ns as f64)),
        ])
    };
    // Ack-latency overhead of `--fsync always` relative to `never`,
    // from medians so one slow outlier sync can't skew it.
    let overhead_p50 = if durability.never.p50_ns > 0 {
        durability.always.p50_ns as f64 / durability.never.p50_ns as f64
    } else {
        0.0
    };
    let doc = Json::obj([
        ("schema", Json::Str("tnet-bench-serve/v2".into())),
        ("seed", Json::Num(opts.seed as f64)),
        ("smoke", Json::Bool(opts.smoke)),
        (
            "workload",
            Json::obj([
                ("scale", Json::Num(w.scale)),
                ("clients", Json::Num(w.clients as f64)),
                (
                    "requests_per_client",
                    Json::Num(w.requests_per_client as f64),
                ),
                ("ingest_batches", Json::Num(w.ingest_batches as f64)),
                ("ingest_batch_size", Json::Num(w.ingest_batch_size as f64)),
                (
                    "publish_interval_ms",
                    Json::Num(w.publish_interval.as_millis() as f64),
                ),
                (
                    "read_mix",
                    Json::Arr(READ_MIX.iter().map(|s| Json::Str(s.to_string())).collect()),
                ),
            ]),
        ),
        (
            "results",
            Json::obj([
                ("requests", Json::Num(run.requests as f64)),
                ("wall_ms", Json::Num(run.wall.as_secs_f64() * 1e3)),
                ("qps", Json::Num(qps)),
                ("p50_ns", Json::Num(run.p50_ns as f64)),
                ("p99_ns", Json::Num(run.p99_ns as f64)),
            ]),
        ),
        ("server", Json::obj(server_fields)),
        (
            "durability",
            Json::obj([
                ("ingest_batches", Json::Num(w.durability_batches as f64)),
                (
                    "ingest_batch_size",
                    Json::Num(w.durability_batch_size as f64),
                ),
                ("fsync_always", policy_block(&durability.always)),
                ("fsync_never", policy_block(&durability.never)),
                ("overhead_p50", Json::Num(overhead_p50)),
                (
                    "acknowledged_records",
                    Json::Num(durability.acknowledged as f64),
                ),
                ("recovered_records", Json::Num(durability.recovered as f64)),
                (
                    "checksum_errors",
                    Json::Num(durability.checksum_errors as f64),
                ),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&opts.out, doc.pretty()) {
        eprintln!("bench_serve: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({:.0} qps, p50 {:.2} ms, p99 {:.2} ms; fsync-always overhead {:.1}x, \
         {}/{} records recovered)",
        opts.out,
        qps,
        run.p50_ns as f64 / 1e6,
        run.p99_ns as f64 / 1e6,
        overhead_p50,
        durability.recovered,
        durability.acknowledged,
    );

    if let Err(e) = check_durability_gates(
        durability.acknowledged as f64,
        durability.recovered as f64,
        durability.checksum_errors as f64,
    ) {
        eprintln!("bench_serve: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_gates(
        qps,
        run.p50_ns as f64,
        run.p99_ns as f64,
        metric(&run.metrics, "serve.cache_hits") as f64,
        metric(&run.metrics, "serve.generations_published") as f64,
        metric(&run.metrics, "serve.query_errors") as f64,
    ) {
        eprintln!("bench_serve: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
