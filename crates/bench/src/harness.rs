//! Minimal std-only timing harness.
//!
//! The repo's tier-1 build must resolve offline, so the benches cannot
//! depend on criterion. This harness covers what the perf trajectory
//! actually needs: wall-clock best/mean over a few samples, an
//! optimization barrier, and a uniform one-line report format that the
//! bench binaries print per case.

use std::time::{Duration, Instant};

/// Re-export of the std optimization barrier, so bench code keeps results
/// alive without hand-rolled tricks.
pub use std::hint::black_box;

/// Wall-clock summary of one benched case.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    pub best: Duration,
    pub mean: Duration,
    pub samples: usize,
}

impl Timing {
    pub fn best_ms(&self) -> f64 {
        self.best.as_secs_f64() * 1e3
    }

    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

/// Runs `f` `samples` times and reports best and mean wall-clock. Best-of
/// is the headline number: on a shared machine the minimum is the least
/// noisy estimator of the true cost.
pub fn sample<T>(samples: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(samples > 0);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        total += elapsed;
    }
    Timing {
        best,
        mean: total / samples as u32,
        samples,
    }
}

/// Times `f` `samples` times and prints the standard one-line report.
pub fn bench<T>(name: &str, samples: usize, f: impl FnMut() -> T) -> Timing {
    let t = sample(samples, f);
    println!(
        "{name}: best {:.3} ms, mean {:.3} ms ({} samples)",
        t.best_ms(),
        t.mean_ms(),
        t.samples
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_shape() {
        let t = sample(3, || (0..1000).sum::<u64>());
        assert_eq!(t.samples, 3);
        assert!(t.best <= t.mean);
    }
}
