//! E9–E11 — the §6 temporal experiments (Tables 2–3, Figure 4, and the
//! memory blow-up).
//!
//! Three benches: building the temporal partition (Table 2's input),
//! mining the label-filtered subset (Table 3 / Figure 4 — the case that
//! fit in the paper's 1 GB), and the aborted unfiltered run (the case
//! that did not — measured up to the budget trip).

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_data::binning::BinScheme;
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_partition::temporal::{filter_by_vertex_labels, temporal_partition, TemporalOptions};

fn main() {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");

    bench("fsg_temporal/partition_table2", 3, || {
        temporal_partition(txns, &scheme, &TemporalOptions::default())
            .expect("valid dates")
            .len()
    });

    let transactions =
        temporal_partition(txns, &scheme, &TemporalOptions::default()).expect("valid dates");
    let filtered = filter_by_vertex_labels(transactions.clone(), 12);
    let cfg_ok = FsgConfig::default()
        .with_support(Support::Fraction(0.05))
        .with_max_edges(5);
    bench("fsg_temporal/mine_filtered_fig4", 3, || {
        mine(&filtered, &cfg_ok)
            .map(|o| o.patterns.len())
            .unwrap_or(0)
    });

    let cfg_oom = FsgConfig::default()
        .with_support(Support::Fraction(0.05))
        .with_max_edges(6)
        .with_memory_budget(256 * 1024);
    bench("fsg_temporal/mine_unfiltered_until_oom", 3, || {
        mine(&transactions, &cfg_oom).is_err()
    });
}
