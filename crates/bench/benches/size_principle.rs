//! E4 — the §5.1 Size-principle experiment: SUBDUE with the Size
//! evaluation recovering a large substructure planted twice (the paper's
//! 31-vertex/37-edge find, scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnet_core::experiments::structural::run_size_principle;
use tnet_exec::Exec;

fn bench_size_principle(c: &mut Criterion) {
    let mut group = c.benchmark_group("size_principle");
    group.sample_size(10);
    for (vertices, extra) in [(8usize, 2usize), (12, 3), (16, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vertices}v")),
            &(vertices, extra),
            |b, &(v, e)| b.iter(|| run_size_principle(v, e, 40, 5, &Exec::default()).found),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_size_principle);
criterion_main!(benches);
