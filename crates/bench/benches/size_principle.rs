//! E4 — the §5.1 Size-principle experiment: SUBDUE with the Size
//! evaluation recovering a large substructure planted twice (the paper's
//! 31-vertex/37-edge find, scaled).

use tnet_bench::harness::bench;
use tnet_core::experiments::structural::run_size_principle;
use tnet_exec::Exec;

fn main() {
    for (vertices, extra) in [(8usize, 2usize), (12, 3), (16, 4)] {
        bench(&format!("size_principle/{vertices}v"), 3, || {
            run_size_principle(vertices, extra, 40, 5, None, &Exec::default())
                .unwrap()
                .found
        });
    }
}
