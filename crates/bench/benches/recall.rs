//! E8 — the footnote-2 recall simulation: "tests on simulated data
//! constructed by joining subgraphs with known frequent patterns ... show
//! recall rates in the 50% and above range with both depth-first and
//! breadth-first partitioning, with better results for smaller graphs."
//!
//! Benchmarked per strategy and per noise level (bigger graphs = more
//! noise edges = the paper's "smaller graphs do better" axis).

use tnet_bench::harness::bench;
use tnet_core::experiments::structural::run_recall;
use tnet_exec::Exec;
use tnet_partition::split::Strategy;

fn main() {
    for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
        for noise in [40usize, 120] {
            bench(
                &format!("recall/{}/noise{noise}", strategy.name()),
                3,
                || run_recall(24, noise, 6, strategy, 17, &Exec::default()).recall(),
            );
        }
    }
}
