//! E8 — the footnote-2 recall simulation: "tests on simulated data
//! constructed by joining subgraphs with known frequent patterns ... show
//! recall rates in the 50% and above range with both depth-first and
//! breadth-first partitioning, with better results for smaller graphs."
//!
//! Benchmarked per strategy and per noise level (bigger graphs = more
//! noise edges = the paper's "smaller graphs do better" axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnet_core::experiments::structural::run_recall;
use tnet_exec::Exec;
use tnet_partition::split::Strategy;

fn bench_recall(c: &mut Criterion) {
    let mut group = c.benchmark_group("recall");
    group.sample_size(10);
    for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
        for noise in [40usize, 120] {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), format!("noise{noise}")),
                &noise,
                |b, &noise| {
                    b.iter(|| {
                        let r = run_recall(24, noise, 6, strategy, 17, &Exec::default());
                        r.recall()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recall);
criterion_main!(benches);
