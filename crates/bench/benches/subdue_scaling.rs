//! E2/E3 — SUBDUE runtime (Figure 1 setting + the §5.1 scaling story).
//!
//! The paper: 3.25 hours for MDL/beam-4/best-3 on 100 vertices & 561
//! edges; days for the Size principle; months extrapolated for the full
//! graph. We reproduce the *shape*: superlinear growth in graph size and
//! Size costing a multiple of MDL.

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_core::experiments::structural::truncated_structural_graph;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::EdgeLabeling;
use tnet_subdue::{discover, EvalMethod, SubdueConfig};

fn main() {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");
    for vertices in [15usize, 25, 50] {
        let g = truncated_structural_graph(txns, &scheme, EdgeLabeling::GrossWeight, vertices);
        for eval in [EvalMethod::Mdl, EvalMethod::Size] {
            let cfg = SubdueConfig {
                beam_width: 4,
                max_best: 3,
                max_size: if eval == EvalMethod::Mdl { 10 } else { 12 },
                eval,
                ..Default::default()
            };
            bench(
                &format!(
                    "subdue_scaling/{}/{vertices}v_{}e",
                    eval.name(),
                    g.edge_count()
                ),
                3,
                || discover(&g, &cfg),
            );
        }
    }
}
