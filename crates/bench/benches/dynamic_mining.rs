//! E17–E19 — dynamic-graph mining benches (the §9 challenge list):
//! periodic-lane detection, time-respecting path mining, and event
//! injection + fallout analysis.

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_core::experiments::extensions::{run_events, run_paths, run_periodic};
use tnet_dynamic::paths::PathConfig;

fn main() {
    let txns = bench_transactions();
    bench("dynamic_mining/periodic_lanes_e17", 3, || {
        run_periodic(txns).lanes.len()
    });
    let cfg = PathConfig {
        min_sep: 0,
        max_sep: 3,
        max_len: 2,
        min_occurrences: 3,
        max_instances: 500_000,
    };
    bench("dynamic_mining/time_respecting_paths_e18", 3, || {
        run_paths(txns, &cfg).patterns.len()
    });
    bench("dynamic_mining/event_fallout_e19", 3, || {
        run_events(txns).affected
    });
}
