//! E17–E19 — dynamic-graph mining benches (the §9 challenge list):
//! periodic-lane detection, time-respecting path mining, and event
//! injection + fallout analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use tnet_bench::bench_transactions;
use tnet_core::experiments::extensions::{run_events, run_paths, run_periodic};
use tnet_dynamic::paths::PathConfig;

fn bench_dynamic(c: &mut Criterion) {
    let txns = bench_transactions();
    let mut group = c.benchmark_group("dynamic_mining");
    group.sample_size(10);
    group.bench_function("periodic_lanes_e17", |b| {
        b.iter(|| run_periodic(txns).lanes.len())
    });
    group.bench_function("time_respecting_paths_e18", |b| {
        let cfg = PathConfig {
            min_sep: 0,
            max_sep: 3,
            max_len: 2,
            min_occurrences: 3,
            max_instances: 500_000,
        };
        b.iter(|| run_paths(txns, &cfg).patterns.len())
    });
    group.bench_function("event_fallout_e19", |b| {
        b.iter(|| run_events(txns).affected)
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
