//! E5 — the §5.2.2 BF/DF partition sweep (Figures 2–3 setting).
//!
//! The paper swept partition counts 400/800/1200/1600 with support 240
//! (BF) / 120 (DF). At bench scale the counts and supports shrink
//! proportionally; the reported series is the same: patterns found per
//! (strategy, partition count), with BF > DF and smaller counts giving
//! more patterns.

use tnet_bench::harness::bench;
use tnet_bench::{bench_transactions, BENCH_SCALE};
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine_for_algorithm1_with, FsgConfig, Support};
use tnet_partition::single_graph::mine_single_graph;
use tnet_partition::split::Strategy;

fn main() {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");
    let od = build_od_graph(
        txns,
        &scheme,
        EdgeLabeling::GrossWeight,
        VertexLabeling::Uniform,
    );
    let mut g = od.graph;
    g.dedup_edges();

    let scale = |n: usize, min: usize| ((n as f64 * BENCH_SCALE).round() as usize).max(min);
    for k_full in [400usize, 800, 1200, 1600] {
        let k = scale(k_full, 4);
        for (strategy, support_full) in [(Strategy::BreadthFirst, 240), (Strategy::DepthFirst, 120)]
        {
            let support = scale(support_full, 3);
            let cfg = FsgConfig::default()
                .with_support(Support::Count(support))
                .with_max_edges(5);
            // Sequential vs 4-thread pool: same byte-identical output, the
            // latter should run the sweep at least ~2x faster.
            for threads in [1usize, 4] {
                let exec = Exec::new(threads);
                bench(
                    &format!(
                        "fsg_partition_sweep/{}/k{k_full}_t{threads}",
                        strategy.name()
                    ),
                    3,
                    || {
                        mine_single_graph(&g, k, 1, strategy, 1, &exec, |t, e| {
                            mine_for_algorithm1_with(t, &cfg, e)
                        })
                        .len()
                    },
                );
            }
        }
    }
}
