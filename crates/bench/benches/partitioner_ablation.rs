//! Ablation: BF vs DF vs multilevel (METIS-style) partitioning.
//!
//! The paper chose BF/DF over METIS "because they allow us to control
//! the type of patterns preserved". This bench measures the trade-off
//! DESIGN.md calls out: wall-clock per strategy here, and pattern recall
//! per strategy in the accompanying `recall_by_partitioner` group (via
//! planted patterns, footnote 2's methodology).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnet_graph::rng::StdRng;
use tnet_bench::bench_transactions;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_fsg::{mine_for_algorithm1, FsgConfig, Support};
use tnet_graph::generate::{plant_patterns, shapes};
use tnet_graph::iso::are_isomorphic;
use tnet_partition::multilevel::split_graph_multilevel;
use tnet_partition::split::{split_graph, Strategy};

fn bench_partitioners(c: &mut Criterion) {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns);
    let od = build_od_graph(txns, &scheme, EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();

    let mut group = c.benchmark_group("partitioner_split_time");
    group.sample_size(10);
    for k in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("breadth_first", k), &g, |b, g| {
            b.iter(|| {
                split_graph(g, k, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(1)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("depth_first", k), &g, |b, g| {
            b.iter(|| {
                split_graph(g, k, Strategy::DepthFirst, &mut StdRng::seed_from_u64(1)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("multilevel", k), &g, |b, g| {
            b.iter(|| split_graph_multilevel(g, k, &mut StdRng::seed_from_u64(1)).len())
        });
    }
    group.finish();

    // Pattern-preservation comparison on planted data (printed once —
    // criterion measures the mining, the recall is the scientific
    // payload).
    let mut group = c.benchmark_group("recall_by_partitioner");
    group.sample_size(10);
    let patterns = vec![
        shapes::hub_and_spoke(4, 0, 1),
        shapes::chain(4, 0, 2),
        shapes::cycle(3, 0, 3),
    ];
    let planted = plant_patterns(&patterns, 24, 80, 5, 11);
    // Support proportional to the transaction count: each partitioner
    // produces a different number of transactions (the multilevel
    // partitioner makes exactly k; BF/DF can exceed it), so a fixed
    // absolute count would be unsatisfiable for small k.
    let recall_of = |transactions: &[tnet_graph::graph::Graph]| {
        let support = (transactions.len() / 3).max(2);
        let cfg = FsgConfig::default()
            .with_support(Support::Count(support))
            .with_max_edges(5);
        let mined = mine_for_algorithm1(transactions, &cfg);
        patterns
            .iter()
            .filter(|p| mined.iter().any(|(m, _)| are_isomorphic(m, p)))
            .count()
    };
    for (name, splitter) in [
        (
            "breadth_first",
            Box::new(|g: &tnet_graph::graph::Graph| {
                split_graph(g, 6, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(2))
            }) as Box<dyn Fn(&tnet_graph::graph::Graph) -> Vec<tnet_graph::graph::Graph>>,
        ),
        (
            "depth_first",
            Box::new(|g: &tnet_graph::graph::Graph| {
                split_graph(g, 6, Strategy::DepthFirst, &mut StdRng::seed_from_u64(2))
            }),
        ),
        (
            "multilevel",
            Box::new(|g: &tnet_graph::graph::Graph| {
                split_graph_multilevel(g, 6, &mut StdRng::seed_from_u64(2))
            }),
        ),
    ] {
        let transactions = splitter(&planted.graph);
        println!(
            "recall_by_partitioner/{name}: {}/{} planted patterns recovered",
            recall_of(&transactions),
            patterns.len()
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let t = splitter(&planted.graph);
                recall_of(&t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
