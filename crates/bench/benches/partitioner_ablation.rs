//! Ablation: BF vs DF vs multilevel (METIS-style) partitioning.
//!
//! The paper chose BF/DF over METIS "because they allow us to control
//! the type of patterns preserved". This bench measures the trade-off
//! DESIGN.md calls out: wall-clock per strategy here, and pattern recall
//! per strategy in the accompanying `recall_by_partitioner` group (via
//! planted patterns, footnote 2's methodology).

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_fsg::{mine_for_algorithm1, FsgConfig, Support};
use tnet_graph::generate::{plant_patterns, shapes};
use tnet_graph::graph::Graph;
use tnet_graph::iso::are_isomorphic;
use tnet_graph::rng::StdRng;
use tnet_partition::multilevel::split_graph_multilevel;
use tnet_partition::split::{split_graph, Strategy};

fn main() {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");
    let od = build_od_graph(
        txns,
        &scheme,
        EdgeLabeling::GrossWeight,
        VertexLabeling::Uniform,
    );
    let mut g = od.graph;
    g.dedup_edges();

    for k in [8usize, 16] {
        bench(
            &format!("partitioner_split_time/breadth_first/{k}"),
            3,
            || split_graph(&g, k, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(1)).len(),
        );
        bench(
            &format!("partitioner_split_time/depth_first/{k}"),
            3,
            || split_graph(&g, k, Strategy::DepthFirst, &mut StdRng::seed_from_u64(1)).len(),
        );
        bench(&format!("partitioner_split_time/multilevel/{k}"), 3, || {
            split_graph_multilevel(&g, k, &mut StdRng::seed_from_u64(1)).len()
        });
    }

    // Pattern-preservation comparison on planted data (printed once —
    // the timing measures the mining, the recall is the scientific
    // payload).
    let patterns = vec![
        shapes::hub_and_spoke(4, 0, 1),
        shapes::chain(4, 0, 2),
        shapes::cycle(3, 0, 3),
    ];
    let planted = plant_patterns(&patterns, 24, 80, 5, 11);
    // Support proportional to the transaction count: each partitioner
    // produces a different number of transactions (the multilevel
    // partitioner makes exactly k; BF/DF can exceed it), so a fixed
    // absolute count would be unsatisfiable for small k.
    let recall_of = |transactions: &[Graph]| {
        let support = (transactions.len() / 3).max(2);
        let cfg = FsgConfig::default()
            .with_support(Support::Count(support))
            .with_max_edges(5);
        let mined = mine_for_algorithm1(transactions, &cfg);
        patterns
            .iter()
            .filter(|p| mined.iter().any(|(m, _)| are_isomorphic(m, p)))
            .count()
    };
    type Splitter = Box<dyn Fn(&Graph) -> Vec<Graph>>;
    let splitters: [(&str, Splitter); 3] = [
        (
            "breadth_first",
            Box::new(|g: &Graph| {
                split_graph(g, 6, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(2))
            }),
        ),
        (
            "depth_first",
            Box::new(|g: &Graph| {
                split_graph(g, 6, Strategy::DepthFirst, &mut StdRng::seed_from_u64(2))
            }),
        ),
        (
            "multilevel",
            Box::new(|g: &Graph| split_graph_multilevel(g, 6, &mut StdRng::seed_from_u64(2))),
        ),
    ];
    for (name, splitter) in splitters {
        let transactions = splitter(&planted.graph);
        println!(
            "recall_by_partitioner/{name}: {}/{} planted patterns recovered",
            recall_of(&transactions),
            patterns.len()
        );
        bench(&format!("recall_by_partitioner/{name}"), 3, || {
            let t = splitter(&planted.graph);
            recall_of(&t)
        });
    }
}
