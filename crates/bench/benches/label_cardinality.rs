//! E16 — the §8 label-cardinality blow-up: "the large number of distinct
//! labels can cause very large candidate sets ... we also used the
//! synthetic graph generator used in [FSG] to generate a set of graph
//! transactions with a large number of distinct vertex labels; this
//! produced the same out of memory problems."
//!
//! Benchmarks FSG over synthetic transaction sets sweeping the distinct
//! vertex-label count at fixed support. Runtime (and the candidate
//! counts recorded in MiningStats) grows steeply with label cardinality.

use tnet_bench::harness::bench;
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::generate::{random_transactions, RandomGraphConfig};

fn main() {
    for vertex_labels in [1u32, 4, 16, 64] {
        let cfg = RandomGraphConfig {
            vertices: 20,
            edges: 30,
            vertex_labels,
            edge_labels: 4,
            self_loops: false,
        };
        let txns = random_transactions(30, &cfg, 9);
        let fsg = FsgConfig::default()
            .with_support(Support::Count(3))
            .with_max_edges(4);
        bench(
            &format!("label_cardinality/{vertex_labels}_vlabels"),
            3,
            || mine(&txns, &fsg).map(|o| o.patterns.len()).unwrap_or(0),
        );
    }
}
