//! E16 — the §8 label-cardinality blow-up: "the large number of distinct
//! labels can cause very large candidate sets ... we also used the
//! synthetic graph generator used in [FSG] to generate a set of graph
//! transactions with a large number of distinct vertex labels; this
//! produced the same out of memory problems."
//!
//! Benchmarks FSG over synthetic transaction sets sweeping the distinct
//! vertex-label count at fixed support. Runtime (and the candidate
//! counts recorded in MiningStats) grows steeply with label cardinality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::generate::{random_transactions, RandomGraphConfig};

fn bench_label_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_cardinality");
    group.sample_size(10);
    for vertex_labels in [1u32, 4, 16, 64] {
        let cfg = RandomGraphConfig {
            vertices: 20,
            edges: 30,
            vertex_labels,
            edge_labels: 4,
            self_loops: false,
        };
        let txns = random_transactions(30, &cfg, 9);
        let fsg = FsgConfig::default()
            .with_support(Support::Count(3))
            .with_max_edges(4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vertex_labels}_vlabels")),
            &txns,
            |b, txns| b.iter(|| mine(txns, &fsg).map(|o| o.patterns.len()).unwrap_or(0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_label_cardinality);
criterion_main!(benches);
