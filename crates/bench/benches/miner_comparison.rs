//! E21 — Apriori (FSG) vs depth-first pattern growth (gSpan-style) on
//! identical workloads. §8 blames FSG's per-level candidate sets for the
//! memory failures; the DFS miner holds only its growth path. Identical
//! outputs, contrasting profiles.

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::rng::StdRng;
use tnet_gspan::{mine_dfs, GspanConfig};
use tnet_partition::split::{split_graph, Strategy};

fn main() {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns).expect("binning fits");
    let od = build_od_graph(
        txns,
        &scheme,
        EdgeLabeling::GrossWeight,
        VertexLabeling::Uniform,
    );
    let mut g = od.graph;
    g.dedup_edges();
    let mut rng = StdRng::seed_from_u64(4);
    let transactions = split_graph(&g, 10, Strategy::BreadthFirst, &mut rng);

    for support in [4usize, 6] {
        let fsg_cfg = FsgConfig::default()
            .with_support(Support::Count(support))
            .with_max_edges(4);
        bench(
            &format!("miner_comparison/fsg_apriori/sup{support}"),
            3,
            || {
                mine(&transactions, &fsg_cfg)
                    .map(|o| o.patterns.len())
                    .unwrap_or(0)
            },
        );
        let gspan_cfg = GspanConfig {
            min_support: Support::Count(support),
            max_edges: 4,
            ..Default::default()
        };
        bench(
            &format!("miner_comparison/gspan_dfs/sup{support}"),
            3,
            || {
                mine_dfs(&transactions, &gspan_cfg)
                    .map(|o| o.patterns.len())
                    .unwrap_or(0)
            },
        );
    }
}
