//! E21 — Apriori (FSG) vs depth-first pattern growth (gSpan-style) on
//! identical workloads. §8 blames FSG's per-level candidate sets for the
//! memory failures; the DFS miner holds only its growth path. Identical
//! outputs, contrasting profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tnet_graph::rng::StdRng;
use tnet_bench::bench_transactions;
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_gspan::{mine_dfs, GspanConfig};
use tnet_partition::split::{split_graph, Strategy};

fn bench_miners(c: &mut Criterion) {
    let txns = bench_transactions();
    let scheme = BinScheme::fit_width_transactions(txns);
    let od = build_od_graph(txns, &scheme, EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let mut rng = StdRng::seed_from_u64(4);
    let transactions = split_graph(&g, 10, Strategy::BreadthFirst, &mut rng);

    let mut group = c.benchmark_group("miner_comparison");
    group.sample_size(10);
    for support in [4usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("fsg_apriori", format!("sup{support}")),
            &transactions,
            |b, t| {
                let cfg = FsgConfig::default()
                    .with_support(Support::Count(support))
                    .with_max_edges(4);
                b.iter(|| mine(t, &cfg).map(|o| o.patterns.len()).unwrap_or(0))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gspan_dfs", format!("sup{support}")),
            &transactions,
            |b, t| {
                let cfg = GspanConfig {
                    min_support: Support::Count(support),
                    max_edges: 4,
                };
                b.iter(|| mine_dfs(t, &cfg).patterns.len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
