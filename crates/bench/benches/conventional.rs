//! E12–E15 — the §7 conventional-mining experiments: Apriori rules
//! (§7.1), J4.8-style classification (§7.2), and EM clustering
//! (Figures 5–6).

use criterion::{criterion_group, criterion_main, Criterion};
use tnet_bench::bench_transactions;
use tnet_core::experiments::conventional::{run_assoc, run_classify, run_cluster};
use tnet_exec::Exec;

fn bench_conventional(c: &mut Criterion) {
    let txns = bench_transactions();
    let mut group = c.benchmark_group("conventional");
    group.sample_size(10);
    group.bench_function("assoc_rules_e12", |b| {
        b.iter(|| run_assoc(txns, 12).rules.len())
    });
    group.bench_function("classify_e13", |b| {
        b.iter(|| run_classify(txns).mode_accuracy)
    });
    group.bench_function("em_cluster_e14_e15", |b| {
        b.iter(|| run_cluster(txns, 9, 7, &Exec::default()).rows.len())
    });
    group.finish();
}

criterion_group!(benches, bench_conventional);
criterion_main!(benches);
