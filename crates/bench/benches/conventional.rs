//! E12–E15 — the §7 conventional-mining experiments: Apriori rules
//! (§7.1), J4.8-style classification (§7.2), and EM clustering
//! (Figures 5–6).

use tnet_bench::bench_transactions;
use tnet_bench::harness::bench;
use tnet_core::experiments::conventional::{run_assoc, run_classify, run_cluster};
use tnet_exec::Exec;

fn main() {
    let txns = bench_transactions();
    bench("conventional/assoc_rules_e12", 3, || {
        run_assoc(txns, 12).rules.len()
    });
    bench("conventional/classify_e13", 3, || {
        run_classify(txns).mode_accuracy
    });
    bench("conventional/em_cluster_e14_e15", 3, || {
        run_cluster(txns, 9, 7, 5, &Exec::default())
            .unwrap()
            .rows
            .len()
    });
}
