//! The transportation transaction model (Table 1 of the paper).
//!
//! Each record is one freight movement with eleven attributes: an id,
//! requested pickup/delivery dates, origin/destination coordinates at
//! 0.1-degree precision, road distance, gross weight, transit hours, and
//! transport mode (Truckload / Less-than-Truckload).

use std::fmt;

/// A calendar date stored as days since 2004-01-01 (the dataset spans six
/// months of 2004-era data; only day arithmetic and rendering are needed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Date(pub u32);

impl Date {
    /// Day offset from the dataset epoch.
    pub fn day(self) -> u32 {
        self.0
    }

    /// Date `n` days later.
    pub fn plus_days(self, n: u32) -> Date {
        Date(self.0 + n)
    }

    /// Signed difference in days (`self - other`).
    pub fn days_since(self, other: Date) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Renders as `YYYY-MM-DD` assuming epoch 2004-01-01 (2004 is a leap
    /// year; the six-month window never leaves it for paper-scale data,
    /// but the conversion handles later years correctly anyway).
    pub fn to_ymd(self) -> (u32, u32, u32) {
        let mut year = 2004u32;
        let mut remaining = self.0;
        loop {
            let leap =
                year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
            let len = if leap { 366 } else { 365 };
            if remaining < len {
                break;
            }
            remaining -= len;
            year += 1;
        }
        let leap =
            year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
        let months = [
            31,
            if leap { 29 } else { 28 },
            31,
            30,
            31,
            30,
            31,
            31,
            30,
            31,
            30,
            31,
        ];
        let mut month = 1u32;
        for &len in &months {
            if remaining < len {
                break;
            }
            remaining -= len;
            month += 1;
        }
        (year, month, remaining + 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A geographic point at the paper's 0.1-degree precision, stored as
/// deci-degrees (`447` = 44.7°N, `-881` = 88.1°W). This makes positions
/// hashable/comparable without float pitfalls and matches the dataset's
/// "to nearest 0.1 degree" coarsening.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LatLon {
    pub lat_deci: i16,
    pub lon_deci: i16,
}

impl LatLon {
    pub fn new(lat: f64, lon: f64) -> LatLon {
        LatLon {
            lat_deci: (lat * 10.0).round() as i16,
            lon_deci: (lon * 10.0).round() as i16,
        }
    }

    pub fn lat(self) -> f64 {
        self.lat_deci as f64 / 10.0
    }

    pub fn lon(self) -> f64 {
        self.lon_deci as f64 / 10.0
    }

    /// Great-circle distance in statute miles (haversine).
    pub fn haversine_miles(self, other: LatLon) -> f64 {
        const R_MILES: f64 = 3958.8;
        let (lat1, lon1) = (self.lat().to_radians(), self.lon().to_radians());
        let (lat2, lon2) = (other.lat().to_radians(), other.lon().to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R_MILES * a.sqrt().asin()
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.lat(), self.lon())
    }
}

/// Transport mode: full Truckload or Less-than-Truckload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransMode {
    Truckload,
    LessThanTruckload,
}

impl TransMode {
    pub fn as_str(self) -> &'static str {
        match self {
            TransMode::Truckload => "TL",
            TransMode::LessThanTruckload => "LTL",
        }
    }

    pub fn parse(s: &str) -> Option<TransMode> {
        match s {
            "TL" => Some(TransMode::Truckload),
            "LTL" => Some(TransMode::LessThanTruckload),
            _ => None,
        }
    }
}

impl fmt::Display for TransMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One origin–destination freight transaction (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Transaction {
    /// Unique transaction identifier.
    pub id: u64,
    /// Requested date to pick up the load.
    pub req_pickup: Date,
    /// Requested delivery date.
    pub req_delivery: Date,
    /// Origin coordinates (0.1-degree precision).
    pub origin: LatLon,
    /// Destination coordinates (0.1-degree precision).
    pub dest: LatLon,
    /// Road miles between origin and destination.
    pub total_distance: f64,
    /// Weight of the load in pounds.
    pub gross_weight: f64,
    /// Hours needed to get from origin to destination.
    pub transit_hours: f64,
    /// Truckload or Less-than-Truckload.
    pub mode: TransMode,
}

impl Transaction {
    /// The (origin, destination) key identifying this OD pair.
    pub fn od_pair(&self) -> (LatLon, LatLon) {
        (self.origin, self.dest)
    }

    /// True on days `d` with pickup <= d <= delivery — the edge is
    /// "active" in the §6 temporal-partitioning sense.
    pub fn active_on(&self, d: Date) -> bool {
        self.req_pickup <= d && d <= self.req_delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_arithmetic_and_rendering() {
        let d = Date(0);
        assert_eq!(d.to_string(), "2004-01-01");
        assert_eq!(Date(30).to_string(), "2004-01-31");
        assert_eq!(Date(31).to_string(), "2004-02-01");
        // 2004 is a leap year: Feb has 29 days.
        assert_eq!(Date(31 + 28).to_string(), "2004-02-29");
        assert_eq!(Date(31 + 29).to_string(), "2004-03-01");
        assert_eq!(Date(366).to_string(), "2005-01-01");
        assert_eq!(Date(5).plus_days(10), Date(15));
        assert_eq!(Date(15).days_since(Date(5)), 10);
        assert_eq!(Date(5).days_since(Date(15)), -10);
    }

    #[test]
    fn june_30_is_day_181() {
        // Six months of 2004: Jan(31)+Feb(29)+Mar(31)+Apr(30)+May(31)+Jun(30)=182 days,
        // so the last day of the window is index 181.
        assert_eq!(Date(181).to_string(), "2004-06-30");
    }

    #[test]
    fn latlon_rounding_and_accessors() {
        let p = LatLon::new(44.7312, -88.1499);
        assert_eq!(p.lat_deci, 447);
        assert_eq!(p.lon_deci, -881);
        assert!((p.lat() - 44.7).abs() < 1e-9);
        assert!((p.lon() - (-88.1)).abs() < 1e-9);
        assert_eq!(p.to_string(), "(44.7, -88.1)");
    }

    #[test]
    fn haversine_sanity() {
        // Green Bay, WI to Chicago, IL: ~175-200 statute miles.
        let gb = LatLon::new(44.5, -88.0);
        let chi = LatLon::new(41.9, -87.6);
        let d = gb.haversine_miles(chi);
        assert!((150.0..220.0).contains(&d), "got {d}");
        // Symmetry and identity.
        assert!((d - chi.haversine_miles(gb)).abs() < 1e-9);
        assert_eq!(gb.haversine_miles(gb), 0.0);
    }

    #[test]
    fn pacific_northwest_to_hawaii_is_far() {
        let pnw = LatLon::new(47.6, -122.3);
        let hi = LatLon::new(21.3, -157.8);
        assert!(pnw.haversine_miles(hi) > 2500.0);
    }

    #[test]
    fn mode_roundtrip() {
        assert_eq!(TransMode::parse("TL"), Some(TransMode::Truckload));
        assert_eq!(TransMode::parse("LTL"), Some(TransMode::LessThanTruckload));
        assert_eq!(TransMode::parse("X"), None);
        assert_eq!(TransMode::Truckload.to_string(), "TL");
    }

    #[test]
    fn active_window() {
        let t = Transaction {
            id: 1,
            req_pickup: Date(10),
            req_delivery: Date(12),
            origin: LatLon::new(44.5, -88.0),
            dest: LatLon::new(41.9, -87.6),
            total_distance: 200.0,
            gross_weight: 30_000.0,
            transit_hours: 5.0,
            mode: TransMode::Truckload,
        };
        assert!(!t.active_on(Date(9)));
        assert!(t.active_on(Date(10)));
        assert!(t.active_on(Date(11)));
        assert!(t.active_on(Date(12)));
        assert!(!t.active_on(Date(13)));
        assert_eq!(t.od_pair(), (t.origin, t.dest));
    }
}
