//! Binning continuous attributes into interval labels (§3).
//!
//! "Labeling edges with the exact values would lead to few frequent
//! patterns being detected ... Instead, we use a binning strategy." The
//! paper used 7 bins for gross weight and 10 for transit hours; distance
//! is binned analogously.

/// A binning of a continuous attribute into contiguous intervals.
///
/// Bin `i` covers `[edges[i], edges[i+1])`, except the last bin which is
/// closed above. Values below the first edge clamp to bin 0; values at or
/// above the last edge clamp to the last bin. Bin indices double as edge
/// labels in the OD graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct Binner {
    /// `bins + 1` ascending boundaries.
    edges: Vec<f64>,
}

impl Binner {
    /// Equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or bounds are non-finite.
    pub fn equal_width(lo: f64, hi: f64, bins: usize) -> Binner {
        assert!(bins > 0, "need at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad range");
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Binner { edges }
    }

    /// Equal-frequency bins from observed data: boundaries at the
    /// quantiles of `values`. Duplicate boundaries (heavily repeated
    /// values) are merged, so the result may have fewer than `bins` bins.
    ///
    /// # Panics
    /// Panics if `values` is empty or `bins == 0`.
    pub fn equal_frequency(values: &[f64], bins: usize) -> Binner {
        assert!(bins > 0, "need at least one bin");
        assert!(!values.is_empty(), "need data");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!sorted.is_empty(), "need finite data");
        // Defense in depth: the filter above drops non-finite values
        // (ingest rejects them earlier with a typed error), but a NaN
        // slipping through a future code path must degrade the ordering,
        // not panic — `total_cmp` is total over all f64 bit patterns.
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let mut edges = vec![sorted[0]];
        for i in 1..bins {
            // Quantile boundary, advanced to the next *distinct* value so
            // heavily repeated values cannot swallow every boundary.
            let mut j = (i * n / bins).min(n - 1);
            while j < n && sorted[j] <= *edges.last().unwrap() {
                j += 1;
            }
            if j < n {
                edges.push(sorted[j]);
            }
        }
        let last = sorted[n - 1];
        if last > *edges.last().unwrap() {
            edges.push(last);
        } else {
            // All values identical: make a degenerate single bin around it.
            edges.push(edges[0] + 1.0);
        }
        Binner { edges }
    }

    /// Explicit ascending boundaries (`bins + 1` of them).
    ///
    /// # Panics
    /// Panics if fewer than 2 boundaries or not strictly ascending.
    pub fn explicit(edges: Vec<f64>) -> Binner {
        assert!(edges.len() >= 2, "need at least two boundaries");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly ascending"
        );
        Binner { edges }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// Bin index for `v` (clamped at both ends).
    pub fn bin(&self, v: f64) -> u32 {
        if v < self.edges[0] {
            return 0;
        }
        // partition_point: first boundary > v; bin = that index - 1.
        let idx = self.edges.partition_point(|&e| e <= v);
        (idx.saturating_sub(1)).min(self.bins() - 1) as u32
    }

    /// The `[lo, hi)` interval of bin `i`.
    pub fn interval(&self, i: u32) -> (f64, f64) {
        let i = i as usize;
        assert!(i < self.bins(), "bin out of range");
        (self.edges[i], self.edges[i + 1])
    }

    /// Human-readable interval label, e.g. `"[0, 6500)"`.
    pub fn interval_label(&self, i: u32) -> String {
        let (lo, hi) = self.interval(i);
        let closing = if (i as usize) == self.bins() - 1 {
            ']'
        } else {
            ')'
        };
        format!("[{lo:.0}, {hi:.0}{closing}")
    }
}

/// Why a [`BinScheme`] could not be fitted to a dataset. Degenerate
/// inputs used to produce zero-width bins silently; now every fitting
/// failure is typed and names the offending attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum BinFitError {
    /// No transactions to fit against.
    Empty,
    /// An attribute contains a NaN or infinite value.
    NonFinite { attribute: &'static str },
    /// An attribute is constant — an equal-width split of a zero-width
    /// range is meaningless.
    Degenerate { attribute: &'static str, value: f64 },
}

impl std::fmt::Display for BinFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinFitError::Empty => write!(f, "cannot fit bins to an empty transaction set"),
            BinFitError::NonFinite { attribute } => {
                write!(f, "cannot fit bins: non-finite {attribute} value")
            }
            BinFitError::Degenerate { attribute, value } => write!(
                f,
                "cannot fit bins: every {attribute} equals {value} (zero-width range)"
            ),
        }
    }
}

impl std::error::Error for BinFitError {}

/// The paper's edge-label binning scheme: 7 gross-weight bins, 10
/// transit-hour bins, and (by analogy) 8 distance bins.
#[derive(Clone, Debug)]
pub struct BinScheme {
    pub weight: Binner,
    pub hours: Binner,
    pub distance: Binner,
}

impl BinScheme {
    /// The configuration reported in the paper: "seven for gross weight
    /// and ten for transit hours", equal-width over the observed ranges.
    pub fn paper_defaults() -> BinScheme {
        BinScheme {
            // "the range for weight is about 500 tons" = ~1,000,000 lb.
            weight: Binner::equal_width(0.0, 1_000_000.0, 7),
            hours: Binner::equal_width(0.0, 200.0, 10),
            distance: Binner::equal_width(0.0, 3_200.0, 8),
        }
    }

    /// Fits the paper's bin counts (7 weight / 10 hours / 8 distance) to
    /// a transaction set with **equal-width** boundaries over the
    /// observed ranges — the paper's §3 scheme. Freight attributes are
    /// heavily skewed (most loads sit far below the ~500-ton maximum),
    /// so one or two bins dominate; this low effective label diversity
    /// is integral to the paper's results: it is why hub patterns with
    /// many same-label spokes are frequent, and why FSG's candidate sets
    /// stay in the hundreds instead of exploding combinatorially.
    ///
    /// # Errors
    /// [`BinFitError`] on an empty transaction set, a non-finite
    /// attribute value, or an all-equal attribute (zero-width range).
    pub fn fit_width_transactions(
        txns: &[crate::model::Transaction],
    ) -> Result<BinScheme, BinFitError> {
        if txns.is_empty() {
            return Err(BinFitError::Empty);
        }
        let range = |f: fn(&crate::model::Transaction) -> f64,
                     attribute: &'static str|
         -> Result<(f64, f64), BinFitError> {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for t in txns {
                let v = f(t);
                if !v.is_finite() {
                    return Err(BinFitError::NonFinite { attribute });
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                return Err(BinFitError::Degenerate {
                    attribute,
                    value: lo,
                });
            }
            Ok((lo, hi))
        };
        let (wlo, whi) = range(|t| t.gross_weight, "gross weight")?;
        let (hlo, hhi) = range(|t| t.transit_hours, "transit hours")?;
        let (dlo, dhi) = range(|t| t.total_distance, "distance")?;
        Ok(BinScheme {
            weight: Binner::equal_width(wlo, whi, 7),
            hours: Binner::equal_width(hlo, hhi, 10),
            distance: Binner::equal_width(dlo, dhi, 8),
        })
    }

    /// Fits the paper's bin counts with **equal-frequency** boundaries —
    /// an ahistorical alternative that maximizes label diversity. Kept
    /// for ablations: it demonstrates how diversity blows up Apriori
    /// candidate sets (§8's analysis).
    pub fn fit_transactions(txns: &[crate::model::Transaction]) -> BinScheme {
        let weights: Vec<f64> = txns.iter().map(|t| t.gross_weight).collect();
        let hours: Vec<f64> = txns.iter().map(|t| t.transit_hours).collect();
        let distances: Vec<f64> = txns.iter().map(|t| t.total_distance).collect();
        BinScheme::fit(&weights, &hours, &distances, 7, 10, 8)
    }

    /// Fits equal-frequency binners to a dataset (used when the synthetic
    /// marginals should drive the boundaries instead of fixed ranges).
    pub fn fit(
        weights: &[f64],
        hours: &[f64],
        distances: &[f64],
        wbins: usize,
        hbins: usize,
        dbins: usize,
    ) -> BinScheme {
        BinScheme {
            weight: Binner::equal_frequency(weights, wbins),
            hours: Binner::equal_frequency(hours, hbins),
            distance: Binner::equal_frequency(distances, dbins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_basics() {
        let b = Binner::equal_width(0.0, 100.0, 4);
        assert_eq!(b.bins(), 4);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(24.9), 0);
        assert_eq!(b.bin(25.0), 1);
        assert_eq!(b.bin(99.9), 3);
        assert_eq!(b.bin(100.0), 3); // top edge clamps into last bin
        assert_eq!(b.bin(-5.0), 0); // below clamps
        assert_eq!(b.bin(1e9), 3); // above clamps
        assert_eq!(b.interval(1), (25.0, 50.0));
    }

    #[test]
    fn binning_is_monotone() {
        let b = Binner::equal_width(0.0, 500.0, 7);
        let mut prev = 0;
        for i in 0..=1000 {
            let v = i as f64 * 0.5;
            let bin = b.bin(v);
            assert!(bin >= prev, "monotonicity violated at {v}");
            prev = bin;
        }
    }

    #[test]
    fn similar_values_share_bin() {
        // The paper's example: 49 tons and 52 tons should land together
        // when the full range is ~500 tons across 7 bins (bin width ~71).
        let b = Binner::equal_width(0.0, 500.0, 7);
        assert_eq!(b.bin(49.0), b.bin(52.0));
    }

    #[test]
    fn equal_frequency_splits_data() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = Binner::equal_frequency(&vals, 4);
        assert_eq!(b.bins(), 4);
        // Each quartile holds ~25 values.
        let counts: Vec<usize> = (0..4)
            .map(|k| vals.iter().filter(|&&v| b.bin(v) == k as u32).count())
            .collect();
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced: {c}");
        }
    }

    #[test]
    fn equal_frequency_handles_duplicates() {
        let vals = vec![5.0; 50];
        let b = Binner::equal_frequency(&vals, 4);
        assert!(b.bins() >= 1);
        assert_eq!(b.bin(5.0), 0);
    }

    #[test]
    fn equal_frequency_skewed() {
        let mut vals = vec![1.0; 90];
        vals.extend((0..10).map(|i| 100.0 + i as f64));
        let b = Binner::equal_frequency(&vals, 5);
        // Duplicate boundary merging must leave a valid binner.
        assert!(b.bins() >= 2);
        assert!(b.bin(1.0) < b.bin(105.0));
    }

    #[test]
    fn explicit_boundaries() {
        let b = Binner::explicit(vec![0.0, 6_500.0, 13_000.0, 19_500.0]);
        assert_eq!(b.bins(), 3);
        assert_eq!(b.bin(6_499.0), 0);
        assert_eq!(b.bin(6_500.0), 1);
        assert_eq!(b.interval_label(0), "[0, 6500)");
        assert_eq!(b.interval_label(2), "[13000, 19500]");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn explicit_rejects_unsorted() {
        Binner::explicit(vec![0.0, 10.0, 5.0]);
    }

    #[test]
    fn paper_defaults_shape() {
        let s = BinScheme::paper_defaults();
        assert_eq!(s.weight.bins(), 7);
        assert_eq!(s.hours.bins(), 10);
        assert_eq!(s.distance.bins(), 8);
    }

    #[test]
    fn fit_width_rejects_bad_inputs() {
        use crate::model::{Date, LatLon, TransMode, Transaction};
        let mk = |weight: f64, hours: f64, dist: f64| Transaction {
            id: 0,
            req_pickup: Date(0),
            req_delivery: Date(1),
            origin: LatLon::new(44.5, -88.0),
            dest: LatLon::new(41.9, -87.6),
            total_distance: dist,
            gross_weight: weight,
            transit_hours: hours,
            mode: TransMode::Truckload,
        };
        assert!(matches!(
            BinScheme::fit_width_transactions(&[]).unwrap_err(),
            BinFitError::Empty
        ));
        let nan = BinScheme::fit_width_transactions(&[mk(f64::NAN, 1.0, 2.0), mk(2.0, 3.0, 4.0)]);
        assert!(matches!(
            nan.unwrap_err(),
            BinFitError::NonFinite {
                attribute: "gross weight"
            }
        ));
        let flat = BinScheme::fit_width_transactions(&[mk(5.0, 1.0, 2.0), mk(5.0, 3.0, 4.0)]);
        assert!(matches!(
            flat.unwrap_err(),
            BinFitError::Degenerate {
                attribute: "gross weight",
                ..
            }
        ));
        let ok = BinScheme::fit_width_transactions(&[mk(1.0, 1.0, 2.0), mk(9.0, 3.0, 4.0)]);
        assert_eq!(ok.unwrap().weight.bins(), 7);
    }

    #[test]
    fn fit_uses_data() {
        let w: Vec<f64> = (0..50).map(|i| i as f64 * 100.0).collect();
        let h: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let d: Vec<f64> = (0..50).map(|i| i as f64 * 10.0).collect();
        let s = BinScheme::fit(&w, &h, &d, 7, 10, 8);
        assert_eq!(s.weight.bins(), 7);
        assert_eq!(s.hours.bins(), 10);
        assert_eq!(s.distance.bins(), 8);
    }
}
