//! Naming coordinates after the nearest major freight market, so reports
//! read like the paper's prose ("a load from Green Bay to Lafayette ...
//! one from Portland to Sacramento") instead of raw lat/lon pairs.

use crate::model::LatLon;

/// A reference market: name and coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Market {
    pub name: &'static str,
    pub lat: f64,
    pub lon: f64,
}

/// Major North American freight markets (plus Honolulu for the paper's
/// air-freight outliers). Coordinates at city centers.
pub const MARKETS: [Market; 36] = [
    Market {
        name: "Green Bay, WI",
        lat: 44.5,
        lon: -88.0,
    },
    Market {
        name: "Chicago, IL",
        lat: 41.9,
        lon: -87.6,
    },
    Market {
        name: "Milwaukee, WI",
        lat: 43.0,
        lon: -87.9,
    },
    Market {
        name: "Minneapolis, MN",
        lat: 44.98,
        lon: -93.27,
    },
    Market {
        name: "Detroit, MI",
        lat: 42.33,
        lon: -83.05,
    },
    Market {
        name: "Indianapolis, IN",
        lat: 39.77,
        lon: -86.16,
    },
    Market {
        name: "Columbus, OH",
        lat: 39.96,
        lon: -83.0,
    },
    Market {
        name: "Cleveland, OH",
        lat: 41.5,
        lon: -81.7,
    },
    Market {
        name: "Pittsburgh, PA",
        lat: 40.44,
        lon: -80.0,
    },
    Market {
        name: "Philadelphia, PA",
        lat: 39.95,
        lon: -75.17,
    },
    Market {
        name: "New York, NY",
        lat: 40.71,
        lon: -74.01,
    },
    Market {
        name: "Boston, MA",
        lat: 42.36,
        lon: -71.06,
    },
    Market {
        name: "Buffalo, NY",
        lat: 42.89,
        lon: -78.88,
    },
    Market {
        name: "Baltimore, MD",
        lat: 39.29,
        lon: -76.61,
    },
    Market {
        name: "Charlotte, NC",
        lat: 35.23,
        lon: -80.84,
    },
    Market {
        name: "Atlanta, GA",
        lat: 33.75,
        lon: -84.39,
    },
    Market {
        name: "Jacksonville, FL",
        lat: 30.33,
        lon: -81.66,
    },
    Market {
        name: "Miami, FL",
        lat: 25.76,
        lon: -80.19,
    },
    Market {
        name: "Nashville, TN",
        lat: 36.16,
        lon: -86.78,
    },
    Market {
        name: "Memphis, TN",
        lat: 35.15,
        lon: -90.05,
    },
    Market {
        name: "St. Louis, MO",
        lat: 38.63,
        lon: -90.2,
    },
    Market {
        name: "Kansas City, MO",
        lat: 39.1,
        lon: -94.58,
    },
    Market {
        name: "New Orleans, LA",
        lat: 29.95,
        lon: -90.07,
    },
    Market {
        name: "Houston, TX",
        lat: 29.76,
        lon: -95.37,
    },
    Market {
        name: "Dallas, TX",
        lat: 32.78,
        lon: -96.8,
    },
    Market {
        name: "San Antonio, TX",
        lat: 29.42,
        lon: -98.49,
    },
    Market {
        name: "Oklahoma City, OK",
        lat: 35.47,
        lon: -97.52,
    },
    Market {
        name: "Denver, CO",
        lat: 39.74,
        lon: -104.99,
    },
    Market {
        name: "Salt Lake City, UT",
        lat: 40.76,
        lon: -111.89,
    },
    Market {
        name: "Phoenix, AZ",
        lat: 33.45,
        lon: -112.07,
    },
    Market {
        name: "Los Angeles, CA",
        lat: 34.05,
        lon: -118.24,
    },
    Market {
        name: "Sacramento, CA",
        lat: 38.58,
        lon: -121.49,
    },
    Market {
        name: "Portland, OR",
        lat: 45.52,
        lon: -122.68,
    },
    Market {
        name: "Seattle, WA",
        lat: 47.61,
        lon: -122.33,
    },
    Market {
        name: "Boise, ID",
        lat: 43.62,
        lon: -116.2,
    },
    Market {
        name: "Honolulu, HI",
        lat: 21.31,
        lon: -157.86,
    },
];

/// The nearest market to `p` and the distance to it in miles.
pub fn nearest_market(p: LatLon) -> (&'static Market, f64) {
    let mut best = &MARKETS[0];
    let mut best_d = f64::INFINITY;
    for m in &MARKETS {
        let d = p.haversine_miles(LatLon::new(m.lat, m.lon));
        if d < best_d {
            best_d = d;
            best = m;
        }
    }
    (best, best_d)
}

/// Human-readable name for a coordinate: the market name when within
/// `radius_miles`, otherwise "near <market>" or the raw coordinates for
/// truly remote points.
pub fn describe(p: LatLon) -> String {
    let (market, d) = nearest_market(p);
    if d <= 25.0 {
        market.name.to_string()
    } else if d <= 150.0 {
        format!("near {}", market.name)
    } else {
        p.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_market_hits() {
        assert_eq!(describe(LatLon::new(44.5, -88.0)), "Green Bay, WI");
        assert_eq!(describe(LatLon::new(21.3, -157.8)), "Honolulu, HI");
    }

    #[test]
    fn nearby_points() {
        // Madison, WI: ~75 miles from Milwaukee.
        let desc = describe(LatLon::new(43.07, -89.4));
        assert!(desc.starts_with("near "), "got {desc}");
    }

    #[test]
    fn remote_points_fall_back_to_coordinates() {
        // Middle of nowhere, Nevada... actually within 150mi of SLC? Use
        // a mid-ocean point.
        let desc = describe(LatLon::new(30.0, -140.0));
        assert!(desc.contains("(30.0, -140.0)"), "got {desc}");
    }

    #[test]
    fn nearest_market_distance_is_minimal() {
        let p = LatLon::new(41.0, -87.0);
        let (m, d) = nearest_market(p);
        for other in &MARKETS {
            let od = p.haversine_miles(LatLon::new(other.lat, other.lon));
            assert!(od >= d - 1e-9, "{} closer than {}", other.name, m.name);
        }
    }
}
