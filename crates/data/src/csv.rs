//! Plain CSV serialization of transaction datasets.
//!
//! The schema mirrors Table 1 column-for-column. Hand-rolled writer and
//! parser: the format is fixed, all fields are numeric or a two-value
//! enum, and no quoting/escaping is ever needed.

use crate::model::{Date, LatLon, TransMode, Transaction};
use std::io::{self, BufRead, Write};

/// The CSV header row (Table 1 column names).
pub const HEADER: &str = "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,\
DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,MOVE_TRANSIT_HOURS,TRANS_MODE";

/// Writes transactions as CSV (header + one row each). Dates are emitted
/// as day offsets from the dataset epoch.
pub fn write_csv(txns: &[Transaction], mut w: impl Write) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in txns {
        writeln!(
            w,
            "{},{},{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.2},{}",
            t.id,
            t.req_pickup.day(),
            t.req_delivery.day(),
            t.origin.lat(),
            t.origin.lon(),
            t.dest.lat(),
            t.dest.lon(),
            t.total_distance,
            t.gross_weight,
            t.transit_hours,
            t.mode
        )?;
    }
    Ok(())
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Reads transactions from CSV produced by [`write_csv`] (header
/// required).
pub fn read_csv(r: impl BufRead) -> Result<Vec<Transaction>, CsvError> {
    let mut txns = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| CsvError {
            line: lineno,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if i == 0 {
            if line != HEADER {
                return Err(CsvError {
                    line: lineno,
                    message: "unexpected header".into(),
                });
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(CsvError {
                line: lineno,
                message: format!("expected 11 fields, got {}", fields.len()),
            });
        }
        let err = |m: &str| CsvError {
            line: lineno,
            message: m.to_string(),
        };
        let parse_f = |s: &str, name: &str| -> Result<f64, CsvError> {
            s.parse::<f64>()
                .map_err(|_| err(&format!("bad {name}: {s}")))
        };
        txns.push(Transaction {
            id: fields[0].parse().map_err(|_| err("bad ID"))?,
            req_pickup: Date(fields[1].parse().map_err(|_| err("bad pickup date"))?),
            req_delivery: Date(fields[2].parse().map_err(|_| err("bad delivery date"))?),
            origin: LatLon::new(
                parse_f(fields[3], "origin latitude")?,
                parse_f(fields[4], "origin longitude")?,
            ),
            dest: LatLon::new(
                parse_f(fields[5], "dest latitude")?,
                parse_f(fields[6], "dest longitude")?,
            ),
            total_distance: parse_f(fields[7], "distance")?,
            gross_weight: parse_f(fields[8], "weight")?,
            transit_hours: parse_f(fields[9], "transit hours")?,
            mode: TransMode::parse(fields[10]).ok_or_else(|| err("bad mode"))?,
        });
    }
    Ok(txns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Transaction> {
        vec![
            Transaction {
                id: 7,
                req_pickup: Date(10),
                req_delivery: Date(12),
                origin: LatLon::new(44.5, -88.0),
                dest: LatLon::new(41.9, -87.6),
                total_distance: 212.5,
                gross_weight: 32_000.0,
                transit_hours: 6.25,
                mode: TransMode::Truckload,
            },
            Transaction {
                id: 8,
                req_pickup: Date(11),
                req_delivery: Date(15),
                origin: LatLon::new(41.9, -87.6),
                dest: LatLon::new(39.1, -84.5),
                total_distance: 296.0,
                gross_weight: 900.0,
                transit_hours: 30.0,
                mode: TransMode::LessThanTruckload,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let txns = sample();
        let mut buf = Vec::new();
        write_csv(&txns, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, txns);
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_csv("wrong,header\n".as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let input = format!("{HEADER}\n1,2,3\n");
        let e = read_csv(input.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("11 fields"));
    }

    #[test]
    fn rejects_bad_mode() {
        let input = format!("{HEADER}\n1,0,1,44.5,-88.0,41.9,-87.6,200,30000,8,AIR\n");
        let e = read_csv(input.as_bytes()).unwrap_err();
        assert!(e.message.contains("mode"));
    }

    #[test]
    fn skips_blank_lines() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        assert_eq!(read_csv(buf.as_slice()).unwrap().len(), 2);
    }
}
