//! Plain CSV serialization of transaction datasets.
//!
//! The schema mirrors Table 1 column-for-column. Hand-rolled writer and
//! parser: the format is fixed, all fields are numeric or a two-value
//! enum, and no quoting/escaping is ever needed.

use crate::model::{Date, LatLon, TransMode, Transaction};
use std::io::{self, BufRead, Write};

/// The CSV header row (Table 1 column names).
pub const HEADER: &str = "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,\
DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,MOVE_TRANSIT_HOURS,TRANS_MODE";

/// Writes transactions as CSV (header + one row each). Dates are emitted
/// as day offsets from the dataset epoch.
pub fn write_csv(txns: &[Transaction], mut w: impl Write) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in txns {
        writeln!(
            w,
            "{},{},{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.2},{}",
            t.id,
            t.req_pickup.day(),
            t.req_delivery.day(),
            t.origin.lat(),
            t.origin.lon(),
            t.dest.lat(),
            t.dest.lon(),
            t.total_distance,
            t.gross_weight,
            t.transit_hours,
            t.mode
        )?;
    }
    Ok(())
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Reads transactions from CSV produced by [`write_csv`] (header
/// required).
///
/// Every numeric field is validated, not just parsed: non-finite
/// lat/lon/distance/weight/hours, negative distance/weight/transit
/// hours, and `req_delivery < req_pickup` are all rejected with the
/// offending 1-based line number. (Unvalidated, a NaN weight would
/// parse cleanly and poison every downstream bin boundary.)
pub fn read_csv(r: impl BufRead) -> Result<Vec<Transaction>, CsvError> {
    let mut txns = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        if let Err(fault) = tnet_exec::failpoint::hit("csv::ingest") {
            return Err(CsvError {
                line: lineno,
                message: fault.to_string(),
            });
        }
        let line = line.map_err(|e| CsvError {
            line: lineno,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if i == 0 {
            if line != HEADER {
                return Err(CsvError {
                    line: lineno,
                    message: "unexpected header".into(),
                });
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(CsvError {
                line: lineno,
                message: format!("expected 11 fields, got {}", fields.len()),
            });
        }
        let err = |m: &str| CsvError {
            line: lineno,
            message: m.to_string(),
        };
        // Coordinates must be finite (a NaN would silently coarsen to
        // 0.0°); magnitudes must additionally be non-negative.
        let parse_finite = |s: &str, name: &str| -> Result<f64, CsvError> {
            let v = s
                .parse::<f64>()
                .map_err(|_| err(&format!("bad {name}: {s}")))?;
            if !v.is_finite() {
                return Err(err(&format!("non-finite {name}: {s}")));
            }
            Ok(v)
        };
        let parse_magnitude = |s: &str, name: &str| -> Result<f64, CsvError> {
            let v = parse_finite(s, name)?;
            if v < 0.0 {
                return Err(err(&format!("negative {name}: {s}")));
            }
            Ok(v)
        };
        let req_pickup = Date(fields[1].parse().map_err(|_| err("bad pickup date"))?);
        let req_delivery = Date(fields[2].parse().map_err(|_| err("bad delivery date"))?);
        if req_delivery < req_pickup {
            return Err(err(&format!(
                "requested delivery (day {}) precedes requested pickup (day {})",
                req_delivery.day(),
                req_pickup.day()
            )));
        }
        txns.push(Transaction {
            id: fields[0].parse().map_err(|_| err("bad ID"))?,
            req_pickup,
            req_delivery,
            origin: LatLon::new(
                parse_finite(fields[3], "origin latitude")?,
                parse_finite(fields[4], "origin longitude")?,
            ),
            dest: LatLon::new(
                parse_finite(fields[5], "dest latitude")?,
                parse_finite(fields[6], "dest longitude")?,
            ),
            total_distance: parse_magnitude(fields[7], "distance")?,
            gross_weight: parse_magnitude(fields[8], "weight")?,
            transit_hours: parse_magnitude(fields[9], "transit hours")?,
            mode: TransMode::parse(fields[10]).ok_or_else(|| err("bad mode"))?,
        });
    }
    Ok(txns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Transaction> {
        vec![
            Transaction {
                id: 7,
                req_pickup: Date(10),
                req_delivery: Date(12),
                origin: LatLon::new(44.5, -88.0),
                dest: LatLon::new(41.9, -87.6),
                total_distance: 212.5,
                gross_weight: 32_000.0,
                transit_hours: 6.25,
                mode: TransMode::Truckload,
            },
            Transaction {
                id: 8,
                req_pickup: Date(11),
                req_delivery: Date(15),
                origin: LatLon::new(41.9, -87.6),
                dest: LatLon::new(39.1, -84.5),
                total_distance: 296.0,
                gross_weight: 900.0,
                transit_hours: 30.0,
                mode: TransMode::LessThanTruckload,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let txns = sample();
        let mut buf = Vec::new();
        write_csv(&txns, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, txns);
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_csv("wrong,header\n".as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let input = format!("{HEADER}\n1,2,3\n");
        let e = read_csv(input.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("11 fields"));
    }

    #[test]
    fn rejects_bad_mode() {
        let input = format!("{HEADER}\n1,0,1,44.5,-88.0,41.9,-87.6,200,30000,8,AIR\n");
        let e = read_csv(input.as_bytes()).unwrap_err();
        assert!(e.message.contains("mode"));
    }

    #[test]
    fn rejects_non_finite_fields() {
        for (field, col) in [("NaN", "latitude"), ("inf", "longitude"), ("NaN", "weight")] {
            let row = match col {
                "latitude" => format!("1,0,1,{field},-88.0,41.9,-87.6,200,30000,8,TL"),
                "longitude" => format!("1,0,1,44.5,{field},41.9,-87.6,200,30000,8,TL"),
                _ => format!("1,0,1,44.5,-88.0,41.9,-87.6,200,{field},8,TL"),
            };
            let input = format!("{HEADER}\n{row}\n");
            let e = read_csv(input.as_bytes()).unwrap_err();
            assert_eq!(e.line, 2, "line number for {col}");
            assert!(
                e.message.contains("non-finite") && e.message.contains(col),
                "unexpected message for {col}: {}",
                e.message
            );
        }
    }

    #[test]
    fn rejects_negative_magnitudes() {
        for (row, name) in [
            ("1,0,1,44.5,-88.0,41.9,-87.6,-200,30000,8,TL", "distance"),
            ("1,0,1,44.5,-88.0,41.9,-87.6,200,-1,8,TL", "weight"),
            ("1,0,1,44.5,-88.0,41.9,-87.6,200,30000,-8,TL", "transit"),
        ] {
            let input = format!("{HEADER}\n{row}\n");
            let e = read_csv(input.as_bytes()).unwrap_err();
            assert_eq!(e.line, 2);
            assert!(
                e.message.contains("negative") && e.message.contains(name),
                "unexpected message for {name}: {}",
                e.message
            );
        }
    }

    #[test]
    fn rejects_delivery_before_pickup() {
        let ok = format!("{HEADER}\n1,5,5,44.5,-88.0,41.9,-87.6,200,30000,8,TL\n");
        assert_eq!(read_csv(ok.as_bytes()).unwrap().len(), 1);
        let input = format!(
            "{HEADER}\n1,0,2,44.5,-88.0,41.9,-87.6,200,30000,8,TL\n\
             2,9,3,44.5,-88.0,41.9,-87.6,200,30000,8,TL\n"
        );
        let e = read_csv(input.as_bytes()).unwrap_err();
        assert_eq!(e.line, 3, "second data row is the bad one");
        assert!(e.message.contains("precedes"), "{}", e.message);
    }

    #[test]
    fn negative_coordinates_are_fine() {
        let input = format!("{HEADER}\n1,0,1,-33.9,-151.2,-37.8,144.9,200,30000,8,TL\n");
        let t = &read_csv(input.as_bytes()).unwrap()[0];
        assert_eq!(t.origin.lat(), -33.9);
    }

    #[test]
    fn skips_blank_lines() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        assert_eq!(read_csv(buf.as_slice()).unwrap().len(), 2);
    }
}
