//! Calibrated synthetic OD dataset (substitute for the proprietary
//! Schneider National data, §3).
//!
//! The paper's experiments depend on the *distributional shape* of the
//! dataset, not on any individual shipment. The generator reproduces
//! every statistic the paper publishes:
//!
//! * 98,292 transactions over six months;
//! * 4,038 distinct 0.1-degree locations — 1,797 origins, 3,770
//!   destinations (some both);
//! * 20,900 distinct OD pairs (multiple deliveries per pair);
//! * out-degree min/max/avg = 1 / 2,373 / ~12 and in-degree
//!   1 / 832 / ~6 in the OD-pair graph;
//! * weight range ≈ 500 tons with a TL/LTL split that a weight threshold
//!   predicts with ~96 % accuracy (§7.2);
//! * origin geography concentrated so that longitude (−84.76, −75.43]
//!   implies latitude (39.8, 44.08] with ≈0.87 confidence (§7.1);
//! * three "air freight" outliers: Pacific Northwest → Hawaii,
//!   >3,000 miles in <24 hours (§7.3, cluster 0);
//! * planted hub-and-spoke, chain/route, and circular structures — the
//!   shapes §§5–6 recover — with weekly-periodic schedules so temporal
//!   partitioning finds repeated routes.

use crate::model::{Date, LatLon, TransMode, Transaction};
use std::collections::{HashMap, HashSet};
use tnet_graph::rng::{Rng, SliceRandom, StdRng};

/// Generator parameters. `paper()` reproduces the published scale;
/// `scaled()` shrinks everything proportionally for fast tests/benches.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    pub transactions: usize,
    pub locations: usize,
    pub origins: usize,
    pub destinations: usize,
    pub od_pairs: usize,
    /// Out-degree of the single mega-hub origin (a national DC).
    pub mega_hub_out: usize,
    /// In-degree of the single mega-sink destination (a big-city market).
    pub mega_sink_in: usize,
    /// Length of the observation window in days (six months ≈ 182).
    pub days: u32,
    /// Probability a shipment's mode label contradicts its weight (keeps
    /// the J4.8 reproduction at ~96 %, not 100 %).
    pub mode_label_noise: f64,
    /// Number of air-freight outlier shipments.
    pub air_freight: usize,
    pub seed: u64,
}

impl SynthConfig {
    /// The full published scale.
    pub fn paper() -> SynthConfig {
        SynthConfig {
            transactions: 98_292,
            locations: 4_038,
            origins: 1_797,
            destinations: 3_770,
            od_pairs: 20_900,
            mega_hub_out: 2_373,
            mega_sink_in: 832,
            days: 182,
            mode_label_noise: 0.04,
            air_freight: 3,
            seed: 42,
        }
    }

    /// A proportionally shrunken configuration (`f` in (0, 1]) that keeps
    /// all structural constraints satisfied. `f = 1.0` equals `paper()`.
    pub fn scaled(f: f64) -> SynthConfig {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        let p = SynthConfig::paper();
        let s = |n: usize, min: usize| ((n as f64 * f).round() as usize).max(min);
        let locations = s(p.locations, 30);
        // Preserve the origin/destination overlap structure.
        let origins = s(p.origins, 12).min(locations - 2);
        let destinations = s(p.destinations, 20).min(locations - 1);
        let destinations = destinations.max(locations - origins); // roles must cover all locations
        let max_pairs = origins * destinations / 2;
        let od_pairs = s(p.od_pairs, origins.max(destinations) + 10).min(max_pairs);
        SynthConfig {
            transactions: s(p.transactions, od_pairs * 2).max(od_pairs + 10),
            locations,
            origins,
            destinations,
            od_pairs,
            mega_hub_out: s(p.mega_hub_out, 8).min(destinations.saturating_sub(10)),
            mega_sink_in: s(p.mega_sink_in, 4).min(origins.saturating_sub(6)),
            days: 182,
            mode_label_noise: p.mode_label_noise,
            air_freight: 3,
            seed: p.seed,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> SynthConfig {
        self.seed = seed;
        self
    }
}

/// The generated dataset plus the ground-truth structures planted in it
/// (used by recall-style validations).
#[derive(Clone, Debug)]
pub struct Dataset {
    pub transactions: Vec<Transaction>,
    /// OD pairs that belong to planted hub-and-spoke structures.
    pub planted_hub_pairs: Vec<(LatLon, LatLon)>,
    /// OD pairs that belong to planted chain routes.
    pub planted_chain_pairs: Vec<(LatLon, LatLon)>,
    /// Planted circular (deadhead-return) routes: each entry is the
    /// location sequence of one cycle, in shipping order. Drives the
    /// flow-pattern recall checks in `tnet-temporal`.
    pub planted_cycles: Vec<Vec<LatLon>>,
}

/// Regional mixture used to place locations. The Midwest/Northeast
/// corridor dominates (the carrier's home turf) which is what makes the
/// §7.1 longitude→latitude rule hold at ~0.87 confidence.
fn sample_location(rng: &mut StdRng) -> LatLon {
    let r: f64 = rng.gen();
    let (mut lat, lon) = if r < 0.38 {
        // Midwest / Northeast corridor.
        (rng.gen_range(37.0..46.5), rng.gen_range(-88.5..-74.0))
    } else if r < 0.58 {
        // Southeast.
        (rng.gen_range(27.5..36.5), rng.gen_range(-90.0..-78.0))
    } else if r < 0.73 {
        // South central (TX corridor).
        (rng.gen_range(28.5..37.0), rng.gen_range(-103.0..-90.0))
    } else if r < 0.88 {
        // Mountain / Pacific.
        (rng.gen_range(32.0..48.5), rng.gen_range(-124.5..-104.0))
    } else {
        // Plains & everything else.
        (rng.gen_range(36.0..48.5), rng.gen_range(-104.0..-85.0))
    };
    // Great-Lakes/Northeast dominance inside the (-84.76, -75.43]
    // longitude band: pull most such points up into the 39.8–44.08
    // latitude belt (this is what realizes the §7.1 rule at ~0.87
    // confidence).
    if lon > -84.76 && lon <= -75.43 && rng.gen::<f64>() < 0.72 {
        lat = rng.gen_range(39.9..44.05);
    }
    LatLon::new(lat, lon)
}

/// Zipf-ish rank weights: weight(rank) = 1 / (rank + 1)^alpha.
fn zipf_cumulative(n: usize, alpha: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(alpha);
        cum.push(total);
    }
    cum
}

fn sample_zipf(cum: &[f64], rng: &mut StdRng) -> usize {
    let t = rng.gen_range(0.0..*cum.last().unwrap());
    cum.partition_point(|&c| c < t).min(cum.len() - 1)
}

/// A rejected generator configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthConfigError {
    /// A structural invariant on the counts failed; the message is the
    /// violated constraint.
    Constraint(&'static str),
    /// `air_freight` shipments cannot exceed `transactions`.
    AirFreightExceedsTransactions { air: usize, transactions: usize },
    /// Air-freight shipments were requested but the OD pair set does not
    /// contain the planted air lane `(0, 1)`.
    AirPairMissing,
}

impl std::fmt::Display for SynthConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthConfigError::Constraint(msg) => write!(f, "{msg}"),
            SynthConfigError::AirFreightExceedsTransactions { air, transactions } => write!(
                f,
                "air_freight ({air}) exceeds total transactions ({transactions})"
            ),
            SynthConfigError::AirPairMissing => {
                write!(f, "air freight requested but the (0, 1) air lane is absent")
            }
        }
    }
}

impl std::error::Error for SynthConfigError {}

/// Generates the dataset for `cfg`. Deterministic for a given seed.
///
/// # Panics
/// On an invalid configuration; [`try_generate`] is the non-panicking
/// form.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    try_generate(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Generates the dataset for `cfg`, rejecting invalid configurations
/// with a typed error instead of panicking. Deterministic for a given
/// seed.
pub fn try_generate(cfg: &SynthConfig) -> Result<Dataset, SynthConfigError> {
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- 1. Locations -----------------------------------------------------
    // Fixed anchor points first: air-freight endpoints, mega hub, mega sink.
    let air_origin = LatLon::new(47.6, -122.3); // Seattle area
    let air_dest = LatLon::new(21.3, -157.8); // Honolulu
    let mega_hub = LatLon::new(44.5, -88.0); // Green Bay
    let mega_sink = LatLon::new(41.9, -87.6); // Chicago
    let mut locs: Vec<LatLon> = vec![air_origin, air_dest, mega_hub, mega_sink];
    let mut seen: HashSet<LatLon> = locs.iter().copied().collect();
    while locs.len() < cfg.locations {
        let p = sample_location(&mut rng);
        if seen.insert(p) {
            locs.push(p);
        }
    }

    // --- 2. Role assignment ------------------------------------------------
    // origins = first `origins` of a shuffled order; destinations = last
    // `destinations`; the middle overlap plays both roles.
    let mut order: Vec<usize> = (4..locs.len()).collect();
    order.shuffle(&mut rng);
    let mut origin_ids: Vec<usize> = vec![0, 2]; // air origin + mega hub ship
    let mut dest_ids: Vec<usize> = vec![1, 3]; // air dest + mega sink receive
    let n_extra_origins = cfg.origins - origin_ids.len();
    let n_extra_dests = cfg.destinations - dest_ids.len();
    origin_ids.extend(order.iter().copied().take(n_extra_origins));
    dest_ids.extend(
        order
            .iter()
            .copied()
            .skip(order.len() - n_extra_dests)
            .take(n_extra_dests),
    );
    // Overlap sanity: origins ∩ destinations may be non-empty — that is
    // exactly the paper's "several locations are both".

    // --- 3. OD pairs --------------------------------------------------------
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(cfg.od_pairs);
    let mut pair_set: HashSet<(usize, usize)> = HashSet::new();
    let mut planted_hub_pairs: Vec<(LatLon, LatLon)> = Vec::new();
    let mut planted_chain_pairs: Vec<(LatLon, LatLon)> = Vec::new();
    let mut planted_cycles: Vec<Vec<LatLon>> = Vec::new();
    let mut periodic_pairs: HashSet<(usize, usize)> = HashSet::new();
    let push_pair =
        |s: usize, d: usize, pairs: &mut Vec<(usize, usize)>, set: &mut HashSet<(usize, usize)>| {
            if s != d && set.insert((s, d)) {
                pairs.push((s, d));
                true
            } else {
                false
            }
        };

    // 3a. Air pair — only when air-freight outliers will ship on it.
    if cfg.air_freight > 0 {
        push_pair(0, 1, &mut pairs, &mut pair_set);
    }

    // 3b. Planted hub-and-spoke structures: an origin delivering to its
    // nearest destinations (a factory's delivery fan, Figure 2's shape).
    let overlap: Vec<usize> = origin_ids
        .iter()
        .copied()
        .filter(|i| dest_ids.contains(i))
        .collect();
    let n_hubs = (cfg.origins / 30).clamp(1, 80);
    for h in 0..n_hubs {
        let hub = origin_ids[2 + (h * 7) % (origin_ids.len() - 2)];
        let mut near: Vec<usize> = dest_ids.iter().copied().filter(|&d| d != hub).collect();
        near.sort_by(|&a, &b| {
            locs[hub]
                .haversine_miles(locs[a])
                .partial_cmp(&locs[hub].haversine_miles(locs[b]))
                .unwrap()
        });
        let spokes = rng.gen_range(6..=12.min(near.len()));
        for &d in near.iter().take(spokes) {
            if push_pair(hub, d, &mut pairs, &mut pair_set) {
                planted_hub_pairs.push((locs[hub], locs[d]));
                periodic_pairs.insert((hub, d));
            }
        }
    }

    // 3c. Planted chain routes (pick up & deliver at each stop — Figure
    // 3's shape) and circular routes, threaded through overlap locations.
    if overlap.len() >= 4 {
        let n_chains = (cfg.origins / 40).clamp(1, 50);
        for c in 0..n_chains {
            let len = rng.gen_range(3..=6.min(overlap.len() - 1));
            let start = (c * 13) % overlap.len();
            let mut prev = overlap[start];
            for k in 1..=len {
                let next = overlap[(start + k) % overlap.len()];
                if push_pair(prev, next, &mut pairs, &mut pair_set) {
                    planted_chain_pairs.push((locs[prev], locs[next]));
                    periodic_pairs.insert((prev, next));
                }
                prev = next;
            }
        }
        // Circular routes: close a few chains back to their start.
        let n_cycles = (cfg.origins / 120).clamp(1, 12);
        for c in 0..n_cycles {
            let len = rng.gen_range(3..=5.min(overlap.len()));
            let start = (c * 29) % overlap.len();
            let mut cycle: Vec<LatLon> = Vec::with_capacity(len);
            for k in 0..len {
                let a = overlap[(start + k) % overlap.len()];
                let b = overlap[(start + (k + 1) % len) % overlap.len()];
                cycle.push(locs[a]);
                if push_pair(a, b, &mut pairs, &mut pair_set) {
                    periodic_pairs.insert((a, b));
                }
            }
            // The cycle's lanes all exist (pushed now or earlier), so the
            // structure is present in the data either way.
            planted_cycles.push(cycle);
        }
    }

    // 3d. Mega hub and mega sink.
    {
        // Exclude the mega hub itself and Hawaii (road freight cannot
        // reach index 1; it only receives the air pair).
        let mut ds: Vec<usize> = dest_ids
            .iter()
            .copied()
            .filter(|&d| d != 2 && d != 1)
            .collect();
        ds.shuffle(&mut rng);
        let mut added = pairs.iter().filter(|&&(s, _)| s == 2).count();
        for &d in &ds {
            if added >= cfg.mega_hub_out {
                break;
            }
            if push_pair(2, d, &mut pairs, &mut pair_set) {
                added += 1;
            }
        }
        let mut os: Vec<usize> = origin_ids.iter().copied().filter(|&o| o != 3).collect();
        os.shuffle(&mut rng);
        let mut added = pairs.iter().filter(|&&(_, d)| d == 3).count();
        for &o in &os {
            if added >= cfg.mega_sink_in {
                break;
            }
            if push_pair(o, 3, &mut pairs, &mut pair_set) {
                added += 1;
            }
        }
    }

    // 3e. Coverage: every origin ships at least once; every destination
    // receives at least once (the paper reports min in/out degree = 1).
    // Coverage pairs keep the north-to-south freight imbalance: prefer a
    // counterparty that makes the lane southbound.
    let covered_out: HashSet<usize> = pair_set.iter().map(|&(s, _)| s).collect();
    for &o in &origin_ids {
        if !covered_out.contains(&o) {
            let olat = locs[o].lat();
            loop {
                let mut d = dest_ids[rng.gen_range(0..dest_ids.len())];
                for _ in 0..6 {
                    let cand = dest_ids[rng.gen_range(0..dest_ids.len())];
                    if cand != 1 {
                        d = cand;
                        if locs[cand].lat() < olat {
                            break;
                        }
                    }
                }
                if d != 1 && push_pair(o, d, &mut pairs, &mut pair_set) {
                    break;
                }
            }
        }
    }
    let covered_in: HashSet<usize> = pair_set.iter().map(|&(_, d)| d).collect();
    for &d in &dest_ids {
        if !covered_in.contains(&d) {
            let dlat = locs[d].lat();
            loop {
                let mut o = origin_ids[rng.gen_range(0..origin_ids.len())];
                for _ in 0..6 {
                    let cand = origin_ids[rng.gen_range(0..origin_ids.len())];
                    o = cand;
                    if locs[cand].lat() > dlat {
                        break;
                    }
                }
                if push_pair(o, d, &mut pairs, &mut pair_set) {
                    break;
                }
            }
        }
    }

    // 3f. Fill to the target pair count: zipf-weighted origins; short-haul
    // bias with occasional long hauls that trend south/west (this produces
    // the §7.2 distance↔latitude correlation structure).
    let origin_cum = zipf_cumulative(origin_ids.len(), 0.72);
    // Per-origin nearest-destination candidate lists, built lazily.
    let mut near_cache: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut guard = 0usize;
    while pairs.len() < cfg.od_pairs {
        guard += 1;
        if guard > cfg.od_pairs * 60 {
            break; // pathological tiny configs: accept fewer pairs
        }
        let o = origin_ids[sample_zipf(&origin_cum, &mut rng)];
        let d = if rng.gen::<f64>() < 0.72 {
            // Short haul: one of the ~45 nearest destinations.
            let near = near_cache.entry(o).or_insert_with(|| {
                let mut ds: Vec<usize> = dest_ids
                    .iter()
                    .copied()
                    .filter(|&d| d != o && d != 1)
                    .collect();
                ds.sort_by(|&a, &b| {
                    locs[o]
                        .haversine_miles(locs[a])
                        .partial_cmp(&locs[o].haversine_miles(locs[b]))
                        .unwrap()
                });
                // "Nearest" must stay genuinely local at any dataset
                // scale: ~1.2% of destinations (45 of the paper's 3,770).
                ds.truncate((dest_ids.len() / 85).max(6));
                ds
            });
            near[rng.gen_range(0..near.len())]
        } else {
            // Long haul: strongly southbound (northern producers feeding
            // the Sun Belt). This directional freight imbalance gives
            // TOTAL_DISTANCE its latitude correlation (§7.2) and is the
            // deadheading asymmetry §5.1 discusses.
            let olat = locs[o].lat();
            let mut pick = dest_ids[rng.gen_range(0..dest_ids.len())];
            let cutoff = (olat - 6.0).min(33.5); // deep-south consumption markets
            for _ in 0..12 {
                let cand = dest_ids[rng.gen_range(0..dest_ids.len())];
                if cand == 1 {
                    continue; // Hawaii is air-only
                }
                pick = cand;
                if locs[cand].lat() < cutoff {
                    break;
                }
            }
            if pick == 1 {
                3
            } else {
                pick
            }
        };
        push_pair(o, d, &mut pairs, &mut pair_set);
    }

    // --- 4. Shipment volumes per pair ---------------------------------------
    // Pareto-ish weights, minimum one shipment per pair.
    let n_regular = cfg.transactions - cfg.air_freight;
    let mut weights: Vec<f64> = (0..pairs.len())
        .map(|_| {
            let u: f64 = rng.gen_range(0.0001f64..1.0);
            u.powf(-0.65) // heavy tail
        })
        .collect();
    // Periodic (planted) pairs ship frequently.
    for (i, p) in pairs.iter().enumerate() {
        if periodic_pairs.contains(p) {
            weights[i] += 8.0;
        }
    }
    let wsum: f64 = weights.iter().sum();
    let mut volumes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * n_regular as f64).floor() as usize)
        .map(|v| v.max(1))
        .collect();
    // The air pair's shipments are emitted separately as hand-crafted
    // outliers; it must not consume regular volume. The pair is absent
    // (by construction) when no air freight was requested.
    let air_idx = pairs.iter().position(|&p| p == (0, 1));
    if cfg.air_freight > 0 && air_idx.is_none() {
        return Err(SynthConfigError::AirPairMissing);
    }
    if let Some(ai) = air_idx {
        volumes[ai] = 0;
    }
    // Exact total: trim or pad (never touching the air pair).
    loop {
        let total: usize = volumes.iter().sum();
        match total.cmp(&n_regular) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => {
                let i = rng.gen_range(0..volumes.len());
                if Some(i) != air_idx {
                    volumes[i] += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                let i = (0..volumes.len()).max_by_key(|&i| volumes[i]).unwrap();
                if volumes[i] > 1 {
                    volumes[i] -= 1;
                } else {
                    break;
                }
            }
        }
    }

    // --- 5. Emit transactions ----------------------------------------------
    let mut txns: Vec<Transaction> = Vec::with_capacity(cfg.transactions);
    let mut next_id = 1u64;
    for (idx, &(oi, di)) in pairs.iter().enumerate() {
        let (o, d) = (locs[oi], locs[di]);
        let air = oi == 0 && di == 1;
        let straight = o.haversine_miles(d);
        let road_factor = rng.gen_range(1.12..1.28);
        let distance = if air {
            straight
        } else {
            straight * road_factor
        };
        let periodic = periodic_pairs.contains(&(oi, di));
        let phase = rng.gen_range(0..7u32);
        // Lane character: some lanes are LTL-dominant, some TL-dominant,
        // and each lane has a consistent service profile — repeated
        // shipments on a lane run the same route with similar dwell, so
        // their binned transit hours coincide (the paper's data shows the
        // same consistency: repeat deliveries on an OD pair support the
        // same labeled edge).
        let tl_lane = rng.gen::<f64>() < 0.55;
        let lane_speed = (28.0 + distance / 60.0).clamp(30.0, 56.0) * rng.gen_range(0.9..1.1);
        let lane_dwell = -12.0 * (1.0 - rng.gen::<f64>()).ln(); // Exp(mean 12h)
        let vol = if air { 0 } else { volumes[idx] };
        for k in 0..vol {
            txns.push(make_txn(
                &mut next_id,
                cfg,
                &mut rng,
                o,
                d,
                distance,
                tl_lane,
                lane_speed,
                lane_dwell,
                periodic,
                phase,
                k,
            ));
        }
    }
    // Air freight outliers: >3,000 miles in <24 hours.
    for _ in 0..cfg.air_freight {
        let pickup = Date(rng.gen_range(0..cfg.days));
        let hours = rng.gen_range(12.0..22.0);
        txns.push(Transaction {
            id: next_id,
            req_pickup: pickup,
            req_delivery: pickup.plus_days(1),
            origin: air_origin,
            dest: air_dest,
            total_distance: rng.gen_range(3_050.0..3_300.0),
            gross_weight: rng.gen_range(8_000.0..20_000.0),
            transit_hours: hours,
            mode: TransMode::Truckload,
        });
        next_id += 1;
    }

    Ok(Dataset {
        transactions: txns,
        planted_hub_pairs,
        planted_chain_pairs,
        planted_cycles,
    })
}

#[allow(clippy::too_many_arguments)]
fn make_txn(
    next_id: &mut u64,
    cfg: &SynthConfig,
    rng: &mut StdRng,
    o: LatLon,
    d: LatLon,
    distance: f64,
    tl_lane: bool,
    lane_speed: f64,
    lane_dwell: f64,
    periodic: bool,
    phase: u32,
    k: usize,
) -> Transaction {
    // Weight: lane-conditioned bimodal with a rare very-heavy tail (the
    // "about 500 tons" range).
    let tl_this = if tl_lane {
        rng.gen::<f64>() < 0.85
    } else {
        rng.gen::<f64>() < 0.15
    };
    let gross_weight = if tl_this {
        if rng.gen::<f64>() < 0.015 {
            rng.gen_range(100_000.0..1_000_000.0) // intermodal/rail moves
        } else {
            rng.gen_range(12_000.0..48_000.0)
        }
    } else {
        // LTL: light, skewed low.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        150.0 + u * u * 9_800.0
    };
    // Mode follows weight (threshold ~10,000 lb) with label noise.
    let mut mode = if gross_weight > 10_000.0 {
        TransMode::Truckload
    } else {
        TransMode::LessThanTruckload
    };
    if rng.gen::<f64>() < cfg.mode_label_noise {
        mode = match mode {
            TransMode::Truckload => TransMode::LessThanTruckload,
            TransMode::LessThanTruckload => TransMode::Truckload,
        };
    }
    // Transit hours: the lane's consistent drive time + dwell profile
    // with small per-shipment jitter. Lane-to-lane dwell variance keeps
    // corr(distance, hours) moderate (the §7.2 observation that distance
    // tracks the latitude attributes more closely than transit hours),
    // while within-lane consistency means repeat shipments share a
    // transit-hours bin.
    let speed = lane_speed * rng.gen_range(0.96..1.04);
    let handling = lane_dwell.min(60.0) * rng.gen_range(0.9..1.1);
    let transit_hours = (distance / speed + handling).max(1.0);
    // Pickup date: weekly-periodic for planted lanes; otherwise uniform
    // over the window with day-of-week seasonality (freight drops hard
    // on weekends — this creates the sparse "quiet dates" that Sec 6.1's
    // <200-label filter selects, and the seasonality Sec 9 mentions).
    let pickup = if periodic {
        let week = (k as u32) % (cfg.days / 7).max(1);
        Date((week * 7 + phase).min(cfg.days - 1))
    } else {
        loop {
            let d = rng.gen_range(0..cfg.days);
            let weight = match d % 7 {
                5 => 0.30, // Saturday
                6 => 0.10, // Sunday
                _ => 1.0,
            };
            if rng.gen::<f64>() < weight {
                break Date(d);
            }
        }
    };
    let transit_days = (transit_hours / 24.0).ceil() as u32;
    let slack = rng.gen_range(0..3u32);
    let t = Transaction {
        id: *next_id,
        req_pickup: pickup,
        req_delivery: pickup.plus_days(transit_days + slack),
        origin: o,
        dest: d,
        total_distance: distance,
        gross_weight,
        transit_hours,
        mode,
    };
    *next_id += 1;
    t
}

fn validate_config(cfg: &SynthConfig) -> Result<(), SynthConfigError> {
    let check = |ok: bool, msg: &'static str| {
        if ok {
            Ok(())
        } else {
            Err(SynthConfigError::Constraint(msg))
        }
    };
    check(cfg.locations >= 8, "need at least 8 locations")?;
    check(
        cfg.origins >= 3 && cfg.origins <= cfg.locations,
        "origins must be in 3..=locations",
    )?;
    check(
        cfg.destinations >= 3 && cfg.destinations <= cfg.locations,
        "destinations must be in 3..=locations",
    )?;
    check(
        cfg.origins + cfg.destinations >= cfg.locations,
        "every location must play at least one role",
    )?;
    check(
        cfg.mega_hub_out < cfg.destinations,
        "mega_hub_out too large",
    )?;
    check(cfg.mega_sink_in < cfg.origins, "mega_sink_in too large")?;
    check(
        cfg.od_pairs >= cfg.destinations.max(cfg.origins),
        "od_pairs below role counts",
    )?;
    check(cfg.transactions > cfg.od_pairs, "need multi-shipment pairs")?;
    check(cfg.days >= 14, "need at least 14 days")?;
    if cfg.air_freight > cfg.transactions {
        return Err(SynthConfigError::AirFreightExceedsTransactions {
            air: cfg.air_freight,
            transactions: cfg.transactions,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn small_config_satisfies_invariants() {
        let cfg = SynthConfig::scaled(0.02);
        let ds = generate(&cfg);
        assert_eq!(ds.transactions.len(), cfg.transactions);
        let st = dataset_stats(&ds.transactions);
        assert!(st.distinct_locations <= cfg.locations);
        assert!(st.distinct_od_pairs <= cfg.od_pairs);
        // Every transaction has sane attributes.
        for t in &ds.transactions {
            assert!(t.total_distance > 0.0);
            assert!(t.gross_weight > 0.0);
            assert!(t.transit_hours > 0.0);
            assert!(t.req_delivery >= t.req_pickup);
            assert_ne!(t.origin, t.dest);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::scaled(0.01);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.transactions, b.transactions);
        let c = generate(&cfg.clone().with_seed(7));
        assert_ne!(a.transactions, c.transactions);
    }

    #[test]
    fn air_freight_outliers_present() {
        let cfg = SynthConfig::scaled(0.02);
        let ds = generate(&cfg);
        let air: Vec<_> = ds
            .transactions
            .iter()
            .filter(|t| t.total_distance > 3_000.0 && t.transit_hours < 24.0)
            .collect();
        assert_eq!(air.len(), cfg.air_freight);
        for t in air {
            assert!(t.origin.lat() > 45.0, "air origin in Pacific NW");
            assert!(t.dest.lon() < -150.0, "air dest in Hawaii");
        }
    }

    #[test]
    fn weight_predicts_mode() {
        let cfg = SynthConfig::scaled(0.03);
        let ds = generate(&cfg);
        let correct = ds
            .transactions
            .iter()
            .filter(|t| {
                let predicted_tl = t.gross_weight > 10_000.0;
                predicted_tl == (t.mode == TransMode::Truckload)
            })
            .count();
        let acc = correct as f64 / ds.transactions.len() as f64;
        assert!(
            (0.93..=0.99).contains(&acc),
            "weight-threshold accuracy should be ~96%, got {acc}"
        );
    }

    #[test]
    fn corridor_rule_holds() {
        // ORIGIN_LONGITUDE in (-84.76,-75.43] => ORIGIN_LATITUDE in
        // (39.8, 44.08] with confidence around 0.87.
        let cfg = SynthConfig::scaled(0.05);
        let ds = generate(&cfg);
        let in_band: Vec<_> = ds
            .transactions
            .iter()
            .filter(|t| t.origin.lon() > -84.76 && t.origin.lon() <= -75.43)
            .collect();
        assert!(in_band.len() > 50, "corridor band should be populated");
        let hits = in_band
            .iter()
            .filter(|t| t.origin.lat() > 39.8 && t.origin.lat() <= 44.08)
            .count();
        let conf = hits as f64 / in_band.len() as f64;
        assert!(
            (0.75..=0.97).contains(&conf),
            "corridor confidence should be near 0.87, got {conf}"
        );
    }

    #[test]
    fn planted_structures_recorded() {
        let cfg = SynthConfig::scaled(0.05);
        let ds = generate(&cfg);
        assert!(!ds.planted_hub_pairs.is_empty());
        assert!(!ds.planted_chain_pairs.is_empty());
        // Planted pairs actually carry shipments.
        let od: HashSet<(LatLon, LatLon)> = ds.transactions.iter().map(|t| t.od_pair()).collect();
        for p in ds.planted_hub_pairs.iter().chain(&ds.planted_chain_pairs) {
            assert!(od.contains(p), "planted pair without shipments");
        }
    }

    #[test]
    #[should_panic(expected = "multi-shipment")]
    fn bad_config_rejected() {
        let mut cfg = SynthConfig::scaled(0.02);
        cfg.transactions = cfg.od_pairs; // must exceed
        generate(&cfg);
    }

    #[test]
    fn try_generate_returns_typed_errors() {
        let mut cfg = SynthConfig::scaled(0.02);
        cfg.transactions = cfg.od_pairs;
        assert!(matches!(
            try_generate(&cfg),
            Err(SynthConfigError::Constraint("need multi-shipment pairs"))
        ));
        let mut cfg = SynthConfig::scaled(0.02);
        cfg.air_freight = cfg.transactions + 1;
        assert!(matches!(
            try_generate(&cfg),
            Err(SynthConfigError::AirFreightExceedsTransactions { .. })
        ));
    }

    #[test]
    fn air_free_config_generates_without_panic() {
        // The air lane (0, 1) is omitted entirely when no air freight is
        // requested; this used to hit `position(...).unwrap()`.
        let mut cfg = SynthConfig::scaled(0.02);
        cfg.air_freight = 0;
        let ds = try_generate(&cfg).unwrap();
        assert_eq!(ds.transactions.len(), cfg.transactions);
        assert!(
            !ds.transactions
                .iter()
                .any(|t| t.total_distance > 3_000.0 && t.transit_hours < 24.0),
            "no air outliers should ship"
        );
    }

    #[test]
    fn planted_cycles_recorded_with_live_lanes() {
        let cfg = SynthConfig::scaled(0.05);
        let ds = generate(&cfg);
        assert!(!ds.planted_cycles.is_empty());
        let od: HashSet<(LatLon, LatLon)> = ds.transactions.iter().map(|t| t.od_pair()).collect();
        for cycle in &ds.planted_cycles {
            assert!(cycle.len() >= 3);
            for k in 0..cycle.len() {
                let lane = (cycle[k], cycle[(k + 1) % cycle.len()]);
                assert!(od.contains(&lane), "cycle lane without shipments");
            }
        }
    }
}
