//! Dataset statistics — the §3 description numbers.

use crate::model::Transaction;
use std::collections::{HashMap, HashSet};

/// Statistics matching the paper's dataset description: "4038 distinct
/// latitude-longitude pairs ... 1797 distinct origins and 3770 distinct
/// destinations ... 20,900 distinct OD pairs".
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    pub transactions: usize,
    pub distinct_locations: usize,
    pub distinct_origins: usize,
    pub distinct_destinations: usize,
    /// Locations appearing as both an origin and a destination.
    pub both_roles: usize,
    pub distinct_od_pairs: usize,
    /// (min, max, mean) out-degree over origins, in the simple OD-pair
    /// graph (distinct destination count per origin).
    pub out_degree: (usize, usize, f64),
    /// (min, max, mean) in-degree over destinations.
    pub in_degree: (usize, usize, f64),
    /// Observation window: (first pickup day, last delivery day).
    pub date_span: (u32, u32),
}

/// Computes [`DatasetStats`] for a transaction set.
///
/// # Panics
/// Panics if `txns` is empty.
pub fn dataset_stats(txns: &[Transaction]) -> DatasetStats {
    assert!(!txns.is_empty(), "empty dataset");
    let mut origins = HashSet::new();
    let mut dests = HashSet::new();
    let mut pairs = HashSet::new();
    let mut first_day = u32::MAX;
    let mut last_day = 0u32;
    for t in txns {
        origins.insert(t.origin);
        dests.insert(t.dest);
        pairs.insert(t.od_pair());
        first_day = first_day.min(t.req_pickup.day());
        last_day = last_day.max(t.req_delivery.day());
    }
    let mut out_deg: HashMap<_, HashSet<_>> = HashMap::new();
    let mut in_deg: HashMap<_, HashSet<_>> = HashMap::new();
    for &(o, d) in &pairs {
        out_deg.entry(o).or_default().insert(d);
        in_deg.entry(d).or_default().insert(o);
    }
    let degree_stats = |m: &HashMap<_, HashSet<_>>| {
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0;
        for s in m.values() {
            min = min.min(s.len());
            max = max.max(s.len());
            sum += s.len();
        }
        (min, max, sum as f64 / m.len() as f64)
    };
    let locations: HashSet<_> = origins.union(&dests).copied().collect();
    DatasetStats {
        transactions: txns.len(),
        distinct_locations: locations.len(),
        distinct_origins: origins.len(),
        distinct_destinations: dests.len(),
        both_roles: origins.intersection(&dests).count(),
        distinct_od_pairs: pairs.len(),
        out_degree: degree_stats(&out_deg),
        in_degree: degree_stats(&in_deg),
        date_span: (first_day, last_day),
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "transactions:          {}", self.transactions)?;
        writeln!(f, "distinct locations:    {}", self.distinct_locations)?;
        writeln!(f, "distinct origins:      {}", self.distinct_origins)?;
        writeln!(f, "distinct destinations: {}", self.distinct_destinations)?;
        writeln!(f, "both roles:            {}", self.both_roles)?;
        writeln!(f, "distinct OD pairs:     {}", self.distinct_od_pairs)?;
        writeln!(
            f,
            "out-degree:            min {} max {} avg {:.1}",
            self.out_degree.0, self.out_degree.1, self.out_degree.2
        )?;
        writeln!(
            f,
            "in-degree:             min {} max {} avg {:.1}",
            self.in_degree.0, self.in_degree.1, self.in_degree.2
        )?;
        writeln!(
            f,
            "date span (days):      {}..{}",
            self.date_span.0, self.date_span.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Date, LatLon, TransMode};

    fn txn(id: u64, o: (f64, f64), d: (f64, f64), day: u32) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(day),
            req_delivery: Date(day + 1),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 100.0,
            gross_weight: 20_000.0,
            transit_hours: 10.0,
            mode: TransMode::Truckload,
        }
    }

    #[test]
    fn counts_and_degrees() {
        // a->b, a->c, b->c; plus a second a->b shipment (same pair).
        let a = (40.0, -88.0);
        let b = (41.0, -87.0);
        let c = (42.0, -86.0);
        let txns = vec![
            txn(1, a, b, 0),
            txn(2, a, c, 3),
            txn(3, b, c, 5),
            txn(4, a, b, 9),
        ];
        let s = dataset_stats(&txns);
        assert_eq!(s.transactions, 4);
        assert_eq!(s.distinct_locations, 3);
        assert_eq!(s.distinct_origins, 2); // a, b
        assert_eq!(s.distinct_destinations, 2); // b, c
        assert_eq!(s.both_roles, 1); // b
        assert_eq!(s.distinct_od_pairs, 3);
        assert_eq!(s.out_degree, (1, 2, 1.5)); // a:2, b:1
        assert_eq!(s.in_degree, (1, 2, 1.5)); // b:1, c:2
        assert_eq!(s.date_span, (0, 10));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        dataset_stats(&[]);
    }

    #[test]
    fn display_contains_fields() {
        let txt = dataset_stats(&[txn(1, (40.0, -88.0), (41.0, -87.0), 2)]).to_string();
        assert!(txt.contains("distinct OD pairs:     1"));
        assert!(txt.contains("out-degree"));
    }
}
