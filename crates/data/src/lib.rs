//! # tnet-data
//!
//! Transportation transaction data model, binning, OD-graph construction,
//! and a synthetic generator calibrated to the ICDE 2005 paper's published
//! dataset statistics (the proprietary Schneider National data is not
//! available; see DESIGN.md for the substitution argument).
//!
//! ```
//! use tnet_data::synth::{generate, SynthConfig};
//! use tnet_data::binning::BinScheme;
//! use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
//!
//! let ds = generate(&SynthConfig::scaled(0.01));
//! let scheme = BinScheme::paper_defaults();
//! let od_gw = build_od_graph(
//!     &ds.transactions,
//!     &scheme,
//!     EdgeLabeling::GrossWeight,
//!     VertexLabeling::Uniform,
//! );
//! assert!(od_gw.graph.edge_count() == ds.transactions.len());
//! ```

pub mod binning;
pub mod csv;
pub mod geo;
pub mod model;
pub mod od_graph;
pub mod stats;
pub mod synth;

pub use binning::{BinFitError, BinScheme, Binner};
pub use model::{Date, LatLon, TransMode, Transaction};
pub use od_graph::{build_od_graph, EdgeLabeling, OdGraph, VertexLabeling};
pub use stats::{dataset_stats, DatasetStats};
pub use synth::{generate, try_generate, Dataset, SynthConfig, SynthConfigError};
