//! Building OD graphs from transactions (§3's `OD_GW`, `OD_TH`, `OD_TD`).
//!
//! "This dataset is naturally represented as a directed graph by mapping
//! locations to vertices. Each transaction can then be represented as the
//! edge of an OD pair." Three labelings share the same vertex/edge sets:
//! gross weight, transit hours, total distance — all binned.

use crate::binning::BinScheme;
use crate::model::{LatLon, Transaction};
use std::collections::HashMap;
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};

/// Which attribute labels the edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeLabeling {
    /// `OD_GW`: gross weight bins.
    GrossWeight,
    /// `OD_TH`: transit-hour bins.
    TransitHours,
    /// `OD_TD`: total-distance bins.
    TotalDistance,
}

impl EdgeLabeling {
    pub fn name(self) -> &'static str {
        match self {
            EdgeLabeling::GrossWeight => "OD_GW",
            EdgeLabeling::TransitHours => "OD_TH",
            EdgeLabeling::TotalDistance => "OD_TD",
        }
    }

    fn bin(self, scheme: &BinScheme, t: &Transaction) -> u32 {
        match self {
            EdgeLabeling::GrossWeight => scheme.weight.bin(t.gross_weight),
            EdgeLabeling::TransitHours => scheme.hours.bin(t.transit_hours),
            EdgeLabeling::TotalDistance => scheme.distance.bin(t.total_distance),
        }
    }
}

/// Vertex labeling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexLabeling {
    /// §5 structural mining: "we assign all vertices the same label" so
    /// only shape matters.
    Uniform,
    /// §6 temporal mining: "each vertex is given a unique label based on
    /// its latitude and longitude".
    ByLocation,
}

/// An OD graph plus the location ↔ vertex correspondence and the edge ↔
/// transaction correspondence.
pub struct OdGraph {
    pub graph: Graph,
    pub labeling: EdgeLabeling,
    pub vertex_labeling: VertexLabeling,
    /// Location of each vertex (indexed by `VertexId` order of insertion).
    pub vertex_location: HashMap<VertexId, LatLon>,
    /// Transaction id carried by each edge, in edge-id order.
    pub edge_txn: Vec<u64>,
}

impl OdGraph {
    /// Vertex for a location, if present.
    pub fn vertex_of(&self, loc: LatLon) -> Option<VertexId> {
        self.vertex_location
            .iter()
            .find(|(_, &l)| l == loc)
            .map(|(&v, _)| v)
    }
}

/// Builds an OD multigraph: one vertex per distinct location, one edge
/// per transaction, labeled per `labeling`/`scheme`.
pub fn build_od_graph(
    txns: &[Transaction],
    scheme: &BinScheme,
    labeling: EdgeLabeling,
    vertex_labeling: VertexLabeling,
) -> OdGraph {
    let mut graph = Graph::with_capacity(txns.len() / 4, txns.len());
    let mut loc_vertex: HashMap<LatLon, VertexId> = HashMap::new();
    let mut vertex_location: HashMap<VertexId, LatLon> = HashMap::new();
    let mut next_loc_label = 0u32;
    let mut edge_txn = Vec::with_capacity(txns.len());
    for t in txns {
        for loc in [t.origin, t.dest] {
            if let std::collections::hash_map::Entry::Vacant(e) = loc_vertex.entry(loc) {
                let label = match vertex_labeling {
                    VertexLabeling::Uniform => VLabel(0),
                    VertexLabeling::ByLocation => {
                        let l = VLabel(next_loc_label);
                        next_loc_label += 1;
                        l
                    }
                };
                let v = graph.add_vertex(label);
                e.insert(v);
                vertex_location.insert(v, loc);
            }
        }
        let s = loc_vertex[&t.origin];
        let d = loc_vertex[&t.dest];
        graph.add_edge(s, d, ELabel(labeling.bin(scheme, t)));
        edge_txn.push(t.id);
    }
    OdGraph {
        graph,
        labeling,
        vertex_labeling,
        vertex_location,
        edge_txn,
    }
}

/// Builds all three paper graphs (`OD_GW`, `OD_TH`, `OD_TD`) with uniform
/// vertex labels (the §5 structural setting).
pub fn build_all_structural(txns: &[Transaction], scheme: &BinScheme) -> [OdGraph; 3] {
    [
        build_od_graph(
            txns,
            scheme,
            EdgeLabeling::GrossWeight,
            VertexLabeling::Uniform,
        ),
        build_od_graph(
            txns,
            scheme,
            EdgeLabeling::TransitHours,
            VertexLabeling::Uniform,
        ),
        build_od_graph(
            txns,
            scheme,
            EdgeLabeling::TotalDistance,
            VertexLabeling::Uniform,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Date, TransMode};

    fn txn(id: u64, o: (f64, f64), d: (f64, f64), w: f64, h: f64, dist: f64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(0),
            req_delivery: Date(2),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: dist,
            gross_weight: w,
            transit_hours: h,
            mode: TransMode::Truckload,
        }
    }

    fn sample() -> Vec<Transaction> {
        let a = (44.5, -88.0);
        let b = (41.9, -87.6);
        let c = (39.1, -84.5);
        vec![
            txn(1, a, b, 30_000.0, 8.0, 200.0),
            txn(2, a, b, 31_000.0, 9.0, 200.0), // same pair, same bins
            txn(3, b, c, 5_000.0, 40.0, 290.0),
        ]
    }

    #[test]
    fn multigraph_structure() {
        let scheme = BinScheme::paper_defaults();
        let g = build_od_graph(
            &sample(),
            &scheme,
            EdgeLabeling::GrossWeight,
            VertexLabeling::Uniform,
        );
        assert_eq!(g.graph.vertex_count(), 3);
        assert_eq!(g.graph.edge_count(), 3); // parallel edges kept
        assert_eq!(g.edge_txn, vec![1, 2, 3]);
        // Uniform labels.
        assert_eq!(g.graph.vertex_label_histogram().len(), 1);
    }

    #[test]
    fn by_location_labels_are_unique() {
        let scheme = BinScheme::paper_defaults();
        let g = build_od_graph(
            &sample(),
            &scheme,
            EdgeLabeling::GrossWeight,
            VertexLabeling::ByLocation,
        );
        assert_eq!(g.graph.vertex_label_histogram().len(), 3);
    }

    #[test]
    fn labelings_differ_by_attribute() {
        let scheme = BinScheme::paper_defaults();
        let [gw, th, td] = build_all_structural(&sample(), &scheme);
        assert_eq!(gw.labeling.name(), "OD_GW");
        assert_eq!(th.labeling.name(), "OD_TH");
        assert_eq!(td.labeling.name(), "OD_TD");
        // Weight: 30k and 31k share a bin; 5k is lighter but the paper
        // scheme's first bin is wide — compare hour labels instead.
        let th_labels: Vec<u32> = th.graph.edges().map(|e| th.graph.edge_label(e).0).collect();
        assert_eq!(th_labels[0], th_labels[1]);
        assert_ne!(th_labels[0], th_labels[2]); // 8h vs 40h differ
    }

    #[test]
    fn vertex_lookup() {
        let scheme = BinScheme::paper_defaults();
        let g = build_od_graph(
            &sample(),
            &scheme,
            EdgeLabeling::GrossWeight,
            VertexLabeling::Uniform,
        );
        let v = g.vertex_of(LatLon::new(44.5, -88.0)).unwrap();
        assert_eq!(g.graph.out_degree(v), 2);
        assert!(g.vertex_of(LatLon::new(0.0, 0.0)).is_none());
    }
}
