//! Property tests for the data layer: binning, CSV, and generator
//! invariants under varying scales and seeds.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_data::binning::Binner;
use tnet_data::csv::{read_csv, write_csv};
use tnet_data::model::{Date, LatLon, TransMode, Transaction};
use tnet_data::stats::dataset_stats;
use tnet_data::synth::{generate, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Equal-width binning is total, monotone, and interval-consistent:
    /// every value falls inside its reported interval (after clamping).
    #[test]
    fn binner_consistency(
        lo in -1e4f64..1e4,
        width in 1.0f64..1e4,
        bins in 1usize..12,
        values in proptest::collection::vec(-2e4f64..2e4, 1..50),
    ) {
        let hi = lo + width;
        let b = Binner::equal_width(lo, hi, bins);
        for &v in &values {
            let bin = b.bin(v);
            prop_assert!((bin as usize) < b.bins());
            let (ilo, ihi) = b.interval(bin);
            let clamped = v.clamp(lo, hi);
            prop_assert!(clamped >= ilo - 1e-9 || bin == 0);
            prop_assert!(clamped <= ihi + 1e-9 || bin as usize == b.bins() - 1);
        }
        // Monotone.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            prop_assert!(b.bin(w[0]) <= b.bin(w[1]));
        }
    }

    /// CSV round-trips arbitrary valid transactions exactly (at the
    /// serializer's declared precision).
    #[test]
    fn csv_roundtrip(
        rows in proptest::collection::vec(
            (0u32..360, 0u32..10, -80i16..80, -180i16..180, -80i16..80, -180i16..180,
             1u32..4_000_000, 1u32..1_000_000_00, 1u32..200_00, any::<bool>()),
            1..30,
        )
    ) {
        let txns: Vec<Transaction> = rows
            .iter()
            .enumerate()
            .map(|(i, &(day, dur, olat, olon, dlat, dlon, dist_c, w_c, h_c, tl))| Transaction {
                id: i as u64 + 1,
                req_pickup: Date(day),
                req_delivery: Date(day + dur),
                origin: LatLon { lat_deci: olat, lon_deci: olon },
                dest: LatLon { lat_deci: dlat, lon_deci: dlon },
                // Quantize to the writer's precision (2 decimals for
                // distance/hours, 1 for weight).
                total_distance: dist_c as f64 / 100.0,
                gross_weight: w_c as f64 / 10.0,
                transit_hours: h_c as f64 / 100.0,
                mode: if tl { TransMode::Truckload } else { TransMode::LessThanTruckload },
            })
            .collect();
        let mut buf = Vec::new();
        write_csv(&txns, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, txns);
    }
}

/// Generator invariants across seeds (not proptest-driven sizes — the
/// generator is expensive; three seeds suffice).
#[test]
fn generator_invariants_across_seeds() {
    for seed in [1u64, 99, 12345] {
        let cfg = SynthConfig::scaled(0.015).with_seed(seed);
        let ds = generate(&cfg);
        assert_eq!(ds.transactions.len(), cfg.transactions);
        let st = dataset_stats(&ds.transactions);
        assert!(st.distinct_locations <= cfg.locations);
        // Min degree 1 is a full-scale property (1,797 origins leave
        // room for singletons); at reduced scale just require sanity.
        assert!(st.out_degree.0 >= 1 && st.out_degree.0 as f64 <= st.out_degree.2);
        assert!(st.in_degree.0 >= 1 && st.in_degree.0 as f64 <= st.in_degree.2);
        assert!(
            st.date_span.1 < cfg.days + 40,
            "deliveries stay near window"
        );
        // Ids are unique and dense.
        let mut ids: Vec<u64> = ds.transactions.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ds.transactions.len());
    }
}
