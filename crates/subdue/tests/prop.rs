//! Property tests for SUBDUE: discovered substructures must be real
//! (instances actually realize the pattern), disjoint instance sets must
//! be disjoint, and compression must conserve the untouched part of the
//! graph.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::iso::has_embedding;
use tnet_subdue::{compress, discover, EvalMethod, SubdueConfig};

type RawEdge = (usize, usize, u32);

fn raw_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = (Vec<u32>, Vec<RawEdge>)> {
    (2..=max_v).prop_flat_map(move |nv| {
        let vlabels = proptest::collection::vec(0u32..2, nv);
        let edges = proptest::collection::vec((0..nv, 0..nv, 0u32..3), 1..=max_e);
        (vlabels, edges)
    })
}

fn build(vlabels: &[u32], edges: &[RawEdge]) -> Graph {
    let mut g = Graph::new();
    let vs: Vec<VertexId> = vlabels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
    for &(s, d, l) in edges {
        g.add_edge(vs[s], vs[d], ELabel(l));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every reported substructure occurs in the graph; every instance
    /// realizes the pattern (size match) and disjoint instances are
    /// vertex-disjoint.
    #[test]
    fn substructures_are_real((vl, es) in raw_graph(8, 14), size_eval in any::<bool>()) {
        let g = build(&vl, &es);
        let cfg = SubdueConfig {
            eval: if size_eval { EvalMethod::Size } else { EvalMethod::Mdl },
            beam_width: 4,
            max_best: 4,
            max_size: 8,
            ..Default::default()
        };
        let out = discover(&g, &cfg).unwrap();
        for sub in &out.best {
            prop_assert!(has_embedding(&sub.pattern, &g));
            prop_assert!(sub.disjoint_count() >= 2);
            for inst in &sub.instances {
                prop_assert_eq!(inst.vertices.len(), sub.pattern.vertex_count());
                prop_assert_eq!(inst.edges.len(), sub.pattern.edge_count());
            }
            let disjoint = sub.disjoint_instances();
            let mut used = std::collections::HashSet::new();
            for inst in &disjoint {
                for v in &inst.vertices {
                    prop_assert!(used.insert(*v), "overlapping 'disjoint' instances");
                }
            }
            prop_assert!(sub.value.is_finite());
        }
    }

    /// Propagated instance maps are genuine embeddings: every instance
    /// carries a pattern-vertex → graph-vertex map (extended
    /// incrementally during expansion, never re-derived) whose images
    /// preserve vertex labels and realize every pattern edge.
    #[test]
    fn instance_maps_are_embeddings((vl, es) in raw_graph(8, 14)) {
        let g = build(&vl, &es);
        let out = discover(
            &g,
            &SubdueConfig {
                beam_width: 4,
                max_best: 4,
                max_size: 8,
                ..Default::default()
            },
        )
        .unwrap();
        for sub in &out.best {
            for inst in &sub.instances {
                prop_assert_eq!(inst.map.len(), sub.pattern.vertex_count());
                for pv in sub.pattern.vertices() {
                    prop_assert_eq!(
                        sub.pattern.vertex_label(pv),
                        g.vertex_label(inst.map[pv.index()])
                    );
                }
                for pe in sub.pattern.edges() {
                    let (ps, pd, pl) = sub.pattern.edge(pe);
                    let (ts, td) = (inst.map[ps.index()], inst.map[pd.index()]);
                    prop_assert!(
                        g.edges().any(|te| {
                            let (s, d, l) = g.edge(te);
                            s == ts && d == td && l == pl
                        }),
                        "map edge image missing in target"
                    );
                }
            }
        }
    }

    /// Compression: marker count equals disjoint instance count, and the
    /// compressed graph never gains size.
    #[test]
    fn compression_accounting((vl, es) in raw_graph(8, 14)) {
        let g = build(&vl, &es);
        let out = discover(
            &g,
            &SubdueConfig {
                eval: EvalMethod::Size,
                max_size: 6,
                ..Default::default()
            },
        )
        .unwrap();
        if let Some(best) = out.best.first() {
            let n = best.disjoint_count();
            let marker = VLabel(999);
            let compressed = compress(&g, best, marker);
            let markers = compressed
                .vertices()
                .filter(|&v| compressed.vertex_label(v) == marker)
                .count();
            prop_assert_eq!(markers, n);
            prop_assert!(compressed.size() <= g.size());
            // Exact arithmetic: vertices drop by n*(pv-1), edges by n*pe.
            let pv = best.pattern.vertex_count();
            let pe = best.pattern.edge_count();
            prop_assert_eq!(compressed.vertex_count(), g.vertex_count() - n * (pv - 1));
            prop_assert_eq!(compressed.edge_count(), g.edge_count() - n * pe);
        }
    }
}
