//! Substructure evaluation: MDL, Size, and SetCover principles.
//!
//! All three score "how much does rewriting the graph with this
//! substructure help": compression ratios for MDL (bits) and Size
//! (vertex + edge counts), classification accuracy for SetCover. Higher
//! is better.

use crate::substructure::Substructure;
use tnet_graph::fingerprint::{graph_fingerprints, may_embed};
use tnet_graph::graph::Graph;
use tnet_graph::iso::has_embedding;
use tnet_graph::view::GraphView;

/// Which evaluation principle ranks candidate substructures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalMethod {
    /// Minimum description length: `DL(G) / (DL(S) + DL(G|S))` with an
    /// adjacency-list bit encoding.
    Mdl,
    /// Size principle: `size(G) / (size(S) + size(G|S))` where `size` is
    /// vertices + edges.
    Size,
    /// Set-cover principle over positive/negative example graphs (the
    /// paper notes transportation data "has no concept of negative
    /// examples" — provided for completeness and for synthetic
    /// experiments).
    SetCover,
}

impl EvalMethod {
    pub fn name(self) -> &'static str {
        match self {
            EvalMethod::Mdl => "MDL",
            EvalMethod::Size => "Size",
            EvalMethod::SetCover => "SetCover",
        }
    }
}

/// Description length of a graph in bits, using an adjacency-list
/// encoding: each vertex pays its label; each edge pays a destination
/// address plus its label. Degenerate alphabets (single label) cost zero
/// bits per entry, which is what makes MDL collapse to tiny patterns on
/// the paper's uniformly-labeled structural graphs.
pub fn description_length(nv: usize, ne: usize, vlabels: usize, elabels: usize) -> f64 {
    let lg = |x: usize| (x.max(1) as f64).log2();
    nv as f64 * lg(vlabels) + ne as f64 * (lg(nv) + lg(elabels))
}

/// Size of the graph after replacing `n` disjoint instances of a pattern
/// with `pv` vertices / `pe` edges by single marker vertices:
/// `(|V| − n(pv−1), |E| − n·pe)`.
pub fn compressed_counts(gv: usize, ge: usize, pv: usize, pe: usize, n: usize) -> (usize, usize) {
    let nv = gv.saturating_sub(n * pv.saturating_sub(1));
    let ne = ge.saturating_sub(n * pe);
    (nv, ne)
}

/// Context the evaluator needs about the input graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphContext {
    pub vertices: usize,
    pub edges: usize,
    pub vertex_labels: usize,
    pub edge_labels: usize,
}

impl GraphContext {
    pub fn of<G: GraphView>(g: &G) -> GraphContext {
        GraphContext {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            vertex_labels: g.vertex_label_histogram().len(),
            edge_labels: g.edge_label_histogram().len(),
        }
    }
}

/// Scores a substructure against the single input graph per `method`
/// (`Mdl` or `Size`). Instances are counted without overlap.
///
/// # Panics
/// Panics if called with [`EvalMethod::SetCover`] — use
/// [`set_cover_value`], which needs example sets.
pub fn evaluate(method: EvalMethod, ctx: &GraphContext, sub: &Substructure) -> f64 {
    evaluate_counts(
        method,
        ctx,
        sub.pattern.vertex_count(),
        sub.pattern.edge_count(),
        sub.disjoint_count(),
    )
}

/// [`evaluate`] from the raw inputs the scoring formulas actually use: a
/// pattern with `pv` vertices and `pe` edges occurring in `n` disjoint
/// instances. Lets the discovery loop score deferred expansion children
/// without materializing their instance lists.
///
/// # Panics
/// Panics if called with [`EvalMethod::SetCover`] — use
/// [`set_cover_value`], which needs example sets.
pub fn evaluate_counts(
    method: EvalMethod,
    ctx: &GraphContext,
    pv: usize,
    pe: usize,
    n: usize,
) -> f64 {
    match method {
        EvalMethod::Size => {
            let g_size = (ctx.vertices + ctx.edges) as f64;
            let (cv, ce) = compressed_counts(ctx.vertices, ctx.edges, pv, pe, n);
            let s_size = (pv + pe) as f64;
            g_size / (s_size + (cv + ce) as f64)
        }
        EvalMethod::Mdl => {
            let dl_g =
                description_length(ctx.vertices, ctx.edges, ctx.vertex_labels, ctx.edge_labels);
            let dl_s = description_length(pv, pe, ctx.vertex_labels, ctx.edge_labels);
            let (cv, ce) = compressed_counts(ctx.vertices, ctx.edges, pv, pe, n);
            // The compressed graph gains one marker vertex label.
            let dl_gs = description_length(cv, ce, ctx.vertex_labels + 1, ctx.edge_labels);
            dl_g / (dl_s + dl_gs)
        }
        EvalMethod::SetCover => panic!("SetCover needs example sets; use set_cover_value"),
    }
}

/// SUBDUE's set-cover value: (positives containing S + negatives not
/// containing S) / total examples.
pub fn set_cover_value(pattern: &Graph, positives: &[Graph], negatives: &[Graph]) -> f64 {
    set_cover_value_counted(pattern, positives, negatives, &mut 0)
}

/// As [`set_cover_value`], counting into `fingerprint_rejects` the VF2
/// existence checks the per-vertex fingerprint filter
/// ([`tnet_graph::fingerprint`]) skipped. A fingerprint reject proves no
/// embedding exists, so the value is identical to an unfiltered
/// evaluation.
pub fn set_cover_value_counted(
    pattern: &Graph,
    positives: &[Graph],
    negatives: &[Graph],
    fingerprint_rejects: &mut usize,
) -> f64 {
    let pfps = graph_fingerprints(pattern);
    let mut contains = |g: &&Graph| {
        if !may_embed(&pfps, *g) {
            *fingerprint_rejects += 1;
            return false;
        }
        has_embedding(pattern, *g)
    };
    let pos_hit = positives.iter().filter(|g| contains(g)).count();
    let neg_miss = negatives.iter().filter(|g| !contains(g)).count();
    let total = positives.len() + negatives.len();
    if total == 0 {
        return 0.0;
    }
    (pos_hit + neg_miss) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substructure::{expand, initial_substructures};
    use tnet_graph::generate::shapes;

    #[test]
    fn dl_zero_for_single_label_vertices() {
        // One vertex label => 0 vertex bits; edges still cost bits.
        let no_edges = description_length(10, 0, 1, 4);
        assert_eq!(no_edges, 0.0);
        let with_edges = description_length(10, 5, 1, 4);
        assert!(with_edges > 0.0);
    }

    #[test]
    fn dl_monotone_in_size() {
        assert!(description_length(10, 10, 2, 4) < description_length(20, 10, 2, 4));
        assert!(description_length(10, 10, 2, 4) < description_length(10, 20, 2, 4));
    }

    #[test]
    fn compressed_counts_math() {
        // 10 vertices, 12 edges; pattern 3v/2e; 2 disjoint instances:
        // removes 2*(3-1)=4 vertices and 2*2=4 edges.
        assert_eq!(compressed_counts(10, 12, 3, 2, 2), (6, 8));
        // Saturation.
        assert_eq!(compressed_counts(3, 2, 3, 2, 5), (0, 0));
    }

    #[test]
    fn more_frequent_pattern_scores_higher() {
        // Graph = 6 disjoint identical edges; the 1-edge substructure
        // with 6 instances must beat one with (artificially) fewer.
        let mut g = Graph::new();
        for _ in 0..6 {
            let a = g.add_vertex(tnet_graph::graph::VLabel(0));
            let b = g.add_vertex(tnet_graph::graph::VLabel(0));
            g.add_edge(a, b, tnet_graph::graph::ELabel(0));
        }
        let ctx = GraphContext::of(&g);
        let init = initial_substructures(&g);
        let full = &expand(&g, &init[0])[0];
        let mut half = full.clone();
        half.instances.truncate(3);
        for m in [EvalMethod::Size, EvalMethod::Mdl] {
            assert!(
                evaluate(m, &ctx, full) > evaluate(m, &ctx, &half),
                "{m:?} should reward frequency"
            );
        }
    }

    #[test]
    fn compression_ratio_above_one_when_compressing() {
        let mut g = Graph::new();
        for _ in 0..8 {
            let a = g.add_vertex(tnet_graph::graph::VLabel(0));
            let b = g.add_vertex(tnet_graph::graph::VLabel(0));
            g.add_edge(a, b, tnet_graph::graph::ELabel(0));
        }
        let ctx = GraphContext::of(&g);
        let init = initial_substructures(&g);
        let sub = &expand(&g, &init[0])[0];
        assert!(evaluate(EvalMethod::Size, &ctx, sub) > 1.0);
    }

    #[test]
    fn set_cover_basics() {
        let hub = shapes::hub_and_spoke(2, 0, 1);
        let positives = vec![
            shapes::hub_and_spoke(3, 0, 1),
            shapes::hub_and_spoke(2, 0, 1),
        ];
        let negatives = vec![shapes::chain(1, 0, 1)];
        let v = set_cover_value(&hub, &positives, &negatives);
        assert!((v - 1.0).abs() < 1e-12, "perfect separator, got {v}");
        let v2 = set_cover_value(&shapes::chain(1, 0, 1), &positives, &negatives);
        assert!((v2 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(set_cover_value(&hub, &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "SetCover")]
    fn evaluate_rejects_set_cover() {
        let g = shapes::chain(1, 0, 1);
        let ctx = GraphContext::of(&g);
        let init = initial_substructures(&g);
        evaluate(EvalMethod::SetCover, &ctx, &init[0]);
    }
}
