//! Beam-search substructure discovery (the SUBDUE main loop).
//!
//! Keeps a value-ordered open list truncated to `beam_width`, repeatedly
//! expands the best substructure by one edge, and collects the best
//! `max_best` substructures seen anywhere in the search. Termination: the
//! open list empties, patterns reach `max_size`, or the expansion budget
//! (`limit`) runs out.

use crate::eval::{evaluate_counts, EvalMethod, GraphContext};
use crate::substructure::{
    expand_deferred, initial_substructures, DeferredChild, SubdueStats, Substructure,
};
use std::time::{Duration, Instant};
use tnet_exec::Exec;
use tnet_graph::graph::Graph;
use tnet_graph::view::GraphView;

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SubdueConfig {
    /// Open-list width.
    pub beam_width: usize,
    /// How many best substructures to report.
    pub max_best: usize,
    /// Maximum pattern size in SUBDUE units (vertices + edges).
    pub max_size: usize,
    /// Maximum substructure expansions before stopping. `None` uses
    /// SUBDUE's own default of half the input graph's size
    /// (vertices + edges) — the knob that keeps beam search from
    /// exploring `beam^depth` candidates on dense graphs.
    pub limit: Option<usize>,
    pub eval: EvalMethod,
    /// Ignore substructures with fewer than this many disjoint instances
    /// (size-1 reporting noise filter; SUBDUE's minimum is 2 — a pattern
    /// seen once compresses nothing).
    pub min_instances: usize,
    /// Abort with [`SubdueError::MemoryBudgetExceeded`] when the
    /// estimated bytes held by the open list, best list, and the current
    /// expansion's children cross this budget. `None` disables the
    /// check. Same semantics as [`tnet_fsg::FsgConfig::memory_budget`]
    /// (Cook & Holder's beam search has no intrinsic bound on instance
    /// lists over dense graphs).
    pub memory_budget: Option<usize>,
}

impl Default for SubdueConfig {
    fn default() -> Self {
        SubdueConfig {
            beam_width: 4,
            max_best: 3,
            max_size: 15,
            limit: None,
            eval: EvalMethod::Mdl,
            min_instances: 2,
            memory_budget: None,
        }
    }
}

/// Discovery failure.
#[derive(Clone, Debug)]
pub enum SubdueError {
    /// The search working set was estimated at `estimated_bytes`, above
    /// the configured budget, after `expanded` expansions.
    MemoryBudgetExceeded {
        estimated_bytes: usize,
        budget: usize,
        expanded: usize,
    },
    /// The search's execution handle was cancelled (caller, deadline, or
    /// a sibling abort through a shared token) before termination.
    Cancelled,
    /// An armed failpoint (`subdue::beam_eval`) injected a fault.
    Fault(tnet_exec::failpoint::Fault),
}

impl std::fmt::Display for SubdueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubdueError::MemoryBudgetExceeded {
                estimated_bytes,
                budget,
                expanded,
            } => write!(
                f,
                "beam working set needs ~{estimated_bytes} bytes after {expanded} expansions, \
                 budget is {budget}"
            ),
            SubdueError::Cancelled => write!(f, "discovery run was cancelled"),
            SubdueError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for SubdueError {}

/// Estimated heap bytes held by one substructure: its pattern graph plus
/// every instance's vertex/edge id lists. The formula mirrors
/// `tnet-fsg`'s candidate model so budgets are comparable across miners.
fn substructure_bytes(s: &Substructure) -> usize {
    let instance_ids: usize = s
        .instances
        .iter()
        .map(|i| i.vertices.len() + i.edges.len())
        .sum();
    256 + s.pattern.vertex_count() * 110
        + s.pattern.edge_count() * 48
        + s.instances.len() * 64
        + instance_ids * 8
}

/// [`substructure_bytes`] for a deferred child, as if it were
/// materialized — budget decisions must not depend on when instance
/// lists are built. Instance maps stay injective under expansion, so
/// every instance of a child has exactly the pattern's vertex and edge
/// counts and the eager formula collapses to a closed form.
fn deferred_bytes(c: &DeferredChild) -> usize {
    let (pv, pe) = (c.pattern.vertex_count(), c.pattern.edge_count());
    let n = c.instance_count();
    256 + pv * 110 + pe * 48 + n * 64 + n * (pv + pe) * 8
}

/// Discovery output.
#[derive(Clone, Debug)]
pub struct SubdueOutput {
    /// Best substructures, highest value first.
    pub best: Vec<Substructure>,
    /// Number of substructures expanded.
    pub expanded: usize,
    /// Number of candidate substructures evaluated.
    pub evaluated: usize,
    pub runtime: Duration,
    /// Instance-propagation counters from the expansions.
    pub stats: SubdueStats,
}

/// Runs SUBDUE discovery on a single graph on the current thread.
/// Equivalent to [`discover_with`] on a sequential pool.
///
/// # Errors
/// [`SubdueError::MemoryBudgetExceeded`] when the beam working set
/// outgrows the configured budget.
pub fn discover(g: &Graph, cfg: &SubdueConfig) -> Result<SubdueOutput, SubdueError> {
    discover_with(g, cfg, &Exec::sequential())
}

/// Runs SUBDUE discovery, scoring each expansion's candidate children
/// (instance filtering + MDL/size evaluation) across `exec`'s workers.
///
/// Freezes the input into a [`tnet_graph::FrozenGraph`] CSR snapshot
/// first (instance expansion walks adjacency heavily), runs the beam
/// search on it, and translates the reported instances' vertex/edge ids
/// back into the caller's arena id space via the snapshot's origin maps
/// — for an already-compact arena the translation is the identity. The
/// beam advances one expansion at a time and children are folded back in
/// expansion order, so the search trajectory — and the output — is
/// identical at any thread count and identical to
/// [`discover_arena_with`].
///
/// # Errors
/// - [`SubdueError::MemoryBudgetExceeded`] on a budget overrun; the
///   handle's token is cancelled first, mirroring the FSG contract.
/// - [`SubdueError::Cancelled`] when `exec` (or an ancestor handle) is
///   cancelled mid-search.
pub fn discover_with(
    g: &Graph,
    cfg: &SubdueConfig,
    exec: &Exec,
) -> Result<SubdueOutput, SubdueError> {
    let frozen = g.freeze();
    let mut out = discover_core(&frozen, cfg, exec)?;
    // Dense snapshot ids → the caller's arena ids. The origin maps are
    // monotone in live-id order, so the instances' sorted id lists stay
    // sorted.
    for sub in &mut out.best {
        for inst in &mut sub.instances {
            for v in &mut inst.vertices {
                *v = frozen.orig_vertex(*v);
            }
            for e in &mut inst.edges {
                *e = frozen.orig_edge(*e);
            }
            for v in &mut inst.map {
                *v = frozen.orig_vertex(*v);
            }
        }
    }
    Ok(out)
}

/// As [`discover_with`], but walks the mutable arena representation
/// directly instead of freezing a CSR snapshot. Kept for differential
/// testing and the frozen-vs-arena benchmark; both paths produce
/// identical output.
pub fn discover_arena_with(
    g: &Graph,
    cfg: &SubdueConfig,
    exec: &Exec,
) -> Result<SubdueOutput, SubdueError> {
    discover_core(g, cfg, exec)
}

/// The representation-generic beam search behind [`discover_with`]
/// (frozen snapshot) and [`discover_arena_with`] (arena). Reported
/// instance ids live in `g`'s own id space.
pub fn discover_core<G: GraphView + Sync>(
    g: &G,
    cfg: &SubdueConfig,
    exec: &Exec,
) -> Result<SubdueOutput, SubdueError> {
    assert!(cfg.beam_width > 0 && cfg.max_best > 0);
    let start = Instant::now();
    // Phase timers stay on the sequential beam loop (children are scored
    // in parallel, but the timers wrap the region), so span registration
    // order — and `--trace` output — is thread-count independent.
    let span_total = exec.span().time("subdue");
    let span = span_total.span().clone();
    span.child("expand");
    span.child("beam_eval");
    let ctx = GraphContext::of(g);
    // SUBDUE's default expansion budget: half the input size.
    let limit = cfg.limit.unwrap_or_else(|| (g.size() / 2).max(8));
    let mut open: Vec<Substructure> = initial_substructures(g);
    for s in &mut open {
        s.value = 0.0; // single vertices never compress
    }
    let mut best: Vec<Substructure> = Vec::new();
    let mut expanded = 0usize;
    let mut evaluated = 0usize;
    let mut stats = SubdueStats::default();
    // Open and best lists only shrink via truncation; tracking their
    // estimate incrementally would drift, so recompute per expansion —
    // both lists are at most `beam_width + max_best` entries.
    let mut resident: usize = open.iter().map(substructure_bytes).sum();

    while let Some(parent) = open.pop() {
        if expanded >= limit {
            break;
        }
        if exec.is_cancelled() {
            return Err(SubdueError::Cancelled);
        }
        tnet_exec::failpoint::hit("subdue::beam_eval").map_err(SubdueError::Fault)?;
        if parent.size() + 1 > cfg.max_size {
            continue;
        }
        expanded += 1;
        let children = {
            let _t = span.time("expand");
            expand_deferred(g, &parent, &mut stats)
        };
        if let Some(budget) = cfg.memory_budget {
            let held: usize = children.iter().map(deferred_bytes).sum();
            let estimated_bytes = resident + held;
            if estimated_bytes > budget {
                // Stop siblings sharing this token before surfacing the
                // abort — the budget models one machine's memory.
                exec.cancel();
                return Err(SubdueError::MemoryBudgetExceeded {
                    estimated_bytes,
                    budget,
                    expanded,
                });
            }
        }
        // Score children in parallel (disjoint-instance counting and MDL
        // evaluation dominate the cost), then fold them into the beam and
        // best list sequentially in expansion order. Instance lists are
        // only materialized for children that actually enter the beam or
        // the best list — the insertion predicates below mirror
        // `consider_best` / `insert_beam` exactly, so skipped children
        // are precisely the ones those calls would have dropped anyway.
        let eval_timer = span.time("beam_eval");
        let scores = exec.par_map(&children, |child| {
            let n = child.disjoint_count(g, &parent);
            if n < cfg.min_instances {
                None
            } else {
                Some(evaluate_counts(
                    cfg.eval,
                    &ctx,
                    child.pattern.vertex_count(),
                    child.pattern.edge_count(),
                    n,
                ))
            }
        });
        drop(eval_timer);
        for (child, score) in children.into_iter().zip(scores) {
            evaluated += 1;
            let Some(value) = score else { continue };
            let wants_best = best.partition_point(|s| s.value >= value) < cfg.max_best;
            // Entering a full beam requires beating (or tying) the
            // current worst; inserting below it would evict the
            // newcomer itself immediately.
            let wants_beam = child.size() < cfg.max_size
                && (open.len() < cfg.beam_width || open.first().is_some_and(|s| s.value <= value));
            if !wants_best && !wants_beam {
                continue;
            }
            let instances = child.materialize(g, &parent);
            let sub = Substructure {
                pattern: child.pattern,
                instances,
                value,
            };
            if wants_best {
                consider_best(&mut best, &sub, cfg.max_best);
            }
            if wants_beam {
                insert_beam(&mut open, sub, cfg.beam_width);
            }
        }
        if cfg.memory_budget.is_some() {
            resident = open.iter().map(substructure_bytes).sum::<usize>()
                + best.iter().map(substructure_bytes).sum::<usize>();
        }
    }

    stats.record_into(exec.metrics());
    exec.metrics().add("subdue.expanded", expanded as u64);
    exec.metrics().add("subdue.evaluated", evaluated as u64);
    Ok(SubdueOutput {
        best,
        expanded,
        evaluated,
        runtime: start.elapsed(),
        stats,
    })
}

/// Keeps `open` ascending by value (pop takes the best) and truncated to
/// the beam width (dropping the worst from the front).
fn insert_beam(open: &mut Vec<Substructure>, sub: Substructure, beam: usize) {
    let pos = open.partition_point(|s| s.value <= sub.value);
    open.insert(pos, sub);
    if open.len() > beam {
        open.remove(0);
    }
}

/// Maintains the global best list (descending by value).
fn consider_best(best: &mut Vec<Substructure>, cand: &Substructure, max_best: usize) {
    let pos = best.partition_point(|s| s.value >= cand.value);
    if pos >= max_best {
        return;
    }
    best.insert(pos, cand.clone());
    best.truncate(max_best);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::{plant_patterns, shapes};
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::{are_isomorphic, has_embedding};

    fn repeated_edges_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            let a = g.add_vertex(VLabel(0));
            let b = g.add_vertex(VLabel(0));
            g.add_edge(a, b, ELabel(0));
        }
        g
    }

    #[test]
    fn finds_the_repeated_edge() {
        let g = repeated_edges_graph(10);
        let out = discover(&g, &SubdueConfig::default()).unwrap();
        assert!(!out.best.is_empty());
        let top = &out.best[0];
        assert_eq!(top.pattern.edge_count(), 1);
        assert_eq!(top.disjoint_count(), 10);
        assert!(top.value > 1.0, "compression ratio should exceed 1");
        assert!(out.expanded > 0 && out.evaluated > 0);
    }

    #[test]
    fn finds_repeated_multi_edge_structure() {
        // 6 disjoint copies of a 3-spoke hub, no noise.
        let planted = plant_patterns(&[shapes::hub_and_spoke(3, 0, 1)], 6, 0, 1, 1);
        let cfg = SubdueConfig {
            beam_width: 6,
            max_best: 3,
            max_size: 8,
            eval: EvalMethod::Size,
            ..Default::default()
        };
        let out = discover(&planted.graph, &cfg).unwrap();
        let top = &out.best[0];
        assert!(
            are_isomorphic(&top.pattern, &shapes::hub_and_spoke(3, 0, 1)),
            "expected the full hub, got {:?}",
            top.pattern
        );
        assert_eq!(top.disjoint_count(), 6);
    }

    #[test]
    fn best_patterns_occur_in_graph() {
        let planted = plant_patterns(
            &[shapes::chain(3, 0, 2), shapes::cycle(3, 0, 1)],
            4,
            10,
            3,
            7,
        );
        let out = discover(
            &planted.graph,
            &SubdueConfig {
                eval: EvalMethod::Size,
                beam_width: 8,
                max_best: 5,
                ..Default::default()
            },
        )
        .unwrap();
        for s in &out.best {
            assert!(has_embedding(&s.pattern, &planted.graph));
            assert!(s.disjoint_count() >= 2);
        }
    }

    #[test]
    fn respects_max_size() {
        let g = repeated_edges_graph(6);
        let out = discover(
            &g,
            &SubdueConfig {
                max_size: 3, // one edge + two vertices
                ..Default::default()
            },
        )
        .unwrap();
        for s in &out.best {
            assert!(s.size() <= 3);
        }
    }

    #[test]
    fn respects_expansion_limit() {
        let planted = plant_patterns(&[shapes::hub_and_spoke(4, 0, 1)], 5, 30, 4, 3);
        let unlimited = discover(&planted.graph, &SubdueConfig::default()).unwrap();
        let limited = discover(
            &planted.graph,
            &SubdueConfig {
                limit: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(limited.expanded <= 2);
        assert!(limited.expanded <= unlimited.expanded);
    }

    #[test]
    fn empty_graph() {
        let out = discover(&Graph::new(), &SubdueConfig::default()).unwrap();
        assert!(out.best.is_empty());
        assert_eq!(out.expanded, 0);
    }

    #[test]
    fn memory_budget_aborts_and_cancels_pool() {
        let g = repeated_edges_graph(40);
        let cfg = SubdueConfig {
            memory_budget: Some(2_048),
            ..Default::default()
        };
        let exec = Exec::new(2);
        match discover_with(&g, &cfg, &exec) {
            Err(SubdueError::MemoryBudgetExceeded {
                estimated_bytes,
                budget,
                ..
            }) => {
                assert!(estimated_bytes > budget);
            }
            other => panic!("expected budget abort, got {other:?}"),
        }
        assert!(exec.is_cancelled(), "abort must cancel the handle's token");
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let g = repeated_edges_graph(10);
        let unbounded = discover(&g, &SubdueConfig::default()).unwrap();
        let bounded = discover(
            &g,
            &SubdueConfig {
                memory_budget: Some(1 << 30),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(unbounded.expanded, bounded.expanded);
        assert_eq!(unbounded.best.len(), bounded.best.len());
    }

    #[test]
    fn cancelled_handle_stops_the_search() {
        let g = repeated_edges_graph(10);
        let exec = Exec::new(2);
        exec.cancel();
        match discover_with(&g, &SubdueConfig::default(), &exec) {
            Err(SubdueError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn beam_insertion_order() {
        let mk = |v: f64| {
            let mut g = Graph::new();
            g.add_vertex(VLabel(0));
            Substructure {
                pattern: g,
                instances: vec![],
                value: v,
            }
        };
        let mut open = Vec::new();
        for v in [0.5, 2.0, 1.0, 3.0] {
            insert_beam(&mut open, mk(v), 3);
        }
        let values: Vec<f64> = open.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0]); // 0.5 evicted, ascending
        assert_eq!(open.pop().unwrap().value, 3.0);
    }
}
