//! Beam-search substructure discovery (the SUBDUE main loop).
//!
//! Keeps a value-ordered open list truncated to `beam_width`, repeatedly
//! expands the best substructure by one edge, and collects the best
//! `max_best` substructures seen anywhere in the search. Termination: the
//! open list empties, patterns reach `max_size`, or the expansion budget
//! (`limit`) runs out.

use crate::eval::{evaluate, EvalMethod, GraphContext};
use crate::substructure::{expand, initial_substructures, Substructure};
use std::time::{Duration, Instant};
use tnet_exec::Exec;
use tnet_graph::graph::Graph;

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SubdueConfig {
    /// Open-list width.
    pub beam_width: usize,
    /// How many best substructures to report.
    pub max_best: usize,
    /// Maximum pattern size in SUBDUE units (vertices + edges).
    pub max_size: usize,
    /// Maximum substructure expansions before stopping. `None` uses
    /// SUBDUE's own default of half the input graph's size
    /// (vertices + edges) — the knob that keeps beam search from
    /// exploring `beam^depth` candidates on dense graphs.
    pub limit: Option<usize>,
    pub eval: EvalMethod,
    /// Ignore substructures with fewer than this many disjoint instances
    /// (size-1 reporting noise filter; SUBDUE's minimum is 2 — a pattern
    /// seen once compresses nothing).
    pub min_instances: usize,
}

impl Default for SubdueConfig {
    fn default() -> Self {
        SubdueConfig {
            beam_width: 4,
            max_best: 3,
            max_size: 15,
            limit: None,
            eval: EvalMethod::Mdl,
            min_instances: 2,
        }
    }
}

/// Discovery output.
#[derive(Clone, Debug)]
pub struct SubdueOutput {
    /// Best substructures, highest value first.
    pub best: Vec<Substructure>,
    /// Number of substructures expanded.
    pub expanded: usize,
    /// Number of candidate substructures evaluated.
    pub evaluated: usize,
    pub runtime: Duration,
}

/// Runs SUBDUE discovery on a single graph on the current thread.
/// Equivalent to [`discover_with`] on a sequential pool.
pub fn discover(g: &Graph, cfg: &SubdueConfig) -> SubdueOutput {
    discover_with(g, cfg, &Exec::sequential())
}

/// Runs SUBDUE discovery, scoring each expansion's candidate children
/// (instance filtering + MDL/size evaluation) across `exec`'s workers.
/// The beam itself advances one expansion at a time and children are
/// folded back in expansion order, so the search trajectory — and the
/// output — is identical at any thread count.
pub fn discover_with(g: &Graph, cfg: &SubdueConfig, exec: &Exec) -> SubdueOutput {
    assert!(cfg.beam_width > 0 && cfg.max_best > 0);
    let start = Instant::now();
    let ctx = GraphContext::of(g);
    // SUBDUE's default expansion budget: half the input size.
    let limit = cfg.limit.unwrap_or_else(|| (g.size() / 2).max(8));
    let mut open: Vec<Substructure> = initial_substructures(g);
    for s in &mut open {
        s.value = 0.0; // single vertices never compress
    }
    let mut best: Vec<Substructure> = Vec::new();
    let mut expanded = 0usize;
    let mut evaluated = 0usize;

    while let Some(parent) = open.pop() {
        if expanded >= limit {
            break;
        }
        if parent.size() + 1 > cfg.max_size {
            continue;
        }
        expanded += 1;
        let children = expand(g, &parent);
        // Score children in parallel (disjoint-instance counting and MDL
        // evaluation dominate the cost), then fold them into the beam and
        // best list sequentially in expansion order.
        let scores = exec.par_map(&children, |child| {
            if child.disjoint_count() < cfg.min_instances {
                None
            } else {
                Some(evaluate(cfg.eval, &ctx, child))
            }
        });
        for (mut child, score) in children.into_iter().zip(scores) {
            evaluated += 1;
            let Some(value) = score else { continue };
            child.value = value;
            consider_best(&mut best, &child, cfg.max_best);
            if child.size() < cfg.max_size {
                insert_beam(&mut open, child, cfg.beam_width);
            }
        }
    }

    SubdueOutput {
        best,
        expanded,
        evaluated,
        runtime: start.elapsed(),
    }
}

/// Keeps `open` ascending by value (pop takes the best) and truncated to
/// the beam width (dropping the worst from the front).
fn insert_beam(open: &mut Vec<Substructure>, sub: Substructure, beam: usize) {
    let pos = open.partition_point(|s| s.value <= sub.value);
    open.insert(pos, sub);
    if open.len() > beam {
        open.remove(0);
    }
}

/// Maintains the global best list (descending by value).
fn consider_best(best: &mut Vec<Substructure>, cand: &Substructure, max_best: usize) {
    let pos = best.partition_point(|s| s.value >= cand.value);
    if pos >= max_best {
        return;
    }
    best.insert(pos, cand.clone());
    best.truncate(max_best);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::{plant_patterns, shapes};
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::{are_isomorphic, has_embedding};

    fn repeated_edges_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            let a = g.add_vertex(VLabel(0));
            let b = g.add_vertex(VLabel(0));
            g.add_edge(a, b, ELabel(0));
        }
        g
    }

    #[test]
    fn finds_the_repeated_edge() {
        let g = repeated_edges_graph(10);
        let out = discover(&g, &SubdueConfig::default());
        assert!(!out.best.is_empty());
        let top = &out.best[0];
        assert_eq!(top.pattern.edge_count(), 1);
        assert_eq!(top.disjoint_count(), 10);
        assert!(top.value > 1.0, "compression ratio should exceed 1");
        assert!(out.expanded > 0 && out.evaluated > 0);
    }

    #[test]
    fn finds_repeated_multi_edge_structure() {
        // 6 disjoint copies of a 3-spoke hub, no noise.
        let planted = plant_patterns(&[shapes::hub_and_spoke(3, 0, 1)], 6, 0, 1, 1);
        let cfg = SubdueConfig {
            beam_width: 6,
            max_best: 3,
            max_size: 8,
            eval: EvalMethod::Size,
            ..Default::default()
        };
        let out = discover(&planted.graph, &cfg);
        let top = &out.best[0];
        assert!(
            are_isomorphic(&top.pattern, &shapes::hub_and_spoke(3, 0, 1)),
            "expected the full hub, got {:?}",
            top.pattern
        );
        assert_eq!(top.disjoint_count(), 6);
    }

    #[test]
    fn best_patterns_occur_in_graph() {
        let planted = plant_patterns(
            &[shapes::chain(3, 0, 2), shapes::cycle(3, 0, 1)],
            4,
            10,
            3,
            7,
        );
        let out = discover(
            &planted.graph,
            &SubdueConfig {
                eval: EvalMethod::Size,
                beam_width: 8,
                max_best: 5,
                ..Default::default()
            },
        );
        for s in &out.best {
            assert!(has_embedding(&s.pattern, &planted.graph));
            assert!(s.disjoint_count() >= 2);
        }
    }

    #[test]
    fn respects_max_size() {
        let g = repeated_edges_graph(6);
        let out = discover(
            &g,
            &SubdueConfig {
                max_size: 3, // one edge + two vertices
                ..Default::default()
            },
        );
        for s in &out.best {
            assert!(s.size() <= 3);
        }
    }

    #[test]
    fn respects_expansion_limit() {
        let planted = plant_patterns(&[shapes::hub_and_spoke(4, 0, 1)], 5, 30, 4, 3);
        let unlimited = discover(&planted.graph, &SubdueConfig::default());
        let limited = discover(
            &planted.graph,
            &SubdueConfig {
                limit: Some(2),
                ..Default::default()
            },
        );
        assert!(limited.expanded <= 2);
        assert!(limited.expanded <= unlimited.expanded);
    }

    #[test]
    fn empty_graph() {
        let out = discover(&Graph::new(), &SubdueConfig::default());
        assert!(out.best.is_empty());
        assert_eq!(out.expanded, 0);
    }

    #[test]
    fn beam_insertion_order() {
        let mk = |v: f64| {
            let mut g = Graph::new();
            g.add_vertex(VLabel(0));
            Substructure {
                pattern: g,
                instances: vec![],
                value: v,
            }
        };
        let mut open = Vec::new();
        for v in [0.5, 2.0, 1.0, 3.0] {
            insert_beam(&mut open, mk(v), 3);
        }
        let values: Vec<f64> = open.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0]); // 0.5 evicted, ascending
        assert_eq!(open.pop().unwrap().value, 3.0);
    }
}
