//! # tnet-subdue
//!
//! A from-scratch reproduction of the SUBDUE substructure-discovery
//! system (Holder, Cook & Djoko) as exercised by the ICDE 2005
//! transportation-mining paper: beam-search expansion of instance lists
//! over a single labeled graph, candidate evaluation by Minimum
//! Description Length, Size, or SetCover principles, and hierarchical
//! compression passes.
//!
//! ```
//! use tnet_subdue::{discover, SubdueConfig, EvalMethod};
//! use tnet_graph::generate::{plant_patterns, shapes};
//!
//! let planted = plant_patterns(&[shapes::hub_and_spoke(3, 0, 1)], 5, 0, 1, 1);
//! let cfg = SubdueConfig { eval: EvalMethod::Size, beam_width: 6, ..Default::default() };
//! let out = discover(&planted.graph, &cfg).unwrap();
//! assert_eq!(out.best[0].pattern.edge_count(), 3); // recovers the hub
//! ```

pub mod compress;
pub mod discover;
pub mod eval;
pub mod inexact;
pub mod substructure;

pub use compress::{compress, hierarchical, HierarchyLevel};
pub use discover::{
    discover, discover_arena_with, discover_core, discover_with, SubdueConfig, SubdueError,
    SubdueOutput,
};
pub use eval::{evaluate, set_cover_value, set_cover_value_counted, EvalMethod, GraphContext};
pub use inexact::{coalesce_fuzzy, edit_distance_bounded, fuzzy_match};
pub use substructure::{
    expand, expand_counted, initial_substructures, Instance, SubdueStats, Substructure,
};
