//! Substructures and instance-based expansion.
//!
//! SUBDUE represents a candidate as a pattern graph *plus the concrete
//! list of its instances* in the input graph. Expansion never runs a
//! global subgraph-isomorphism search: each instance is extended by one
//! adjacent edge, and the extended instances are regrouped by the
//! isomorphism class of their induced pattern. This is the core trick
//! that lets SUBDUE walk a single large graph.

use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, EdgeId, Graph, VLabel, VertexId};
use tnet_graph::hash::{FxHashMap, FxHashSet};
use tnet_graph::iso::{Find, Matcher};
use tnet_graph::view::{self, GraphView};

/// One concrete occurrence of a pattern: the target vertices and edges it
/// covers, plus the mapping from pattern vertices to target vertices.
/// Vertex and edge lists are kept sorted so instances can be deduplicated
/// structurally; equality and hashing ignore `map` (two automorphic
/// mappings of the same vertex/edge sets are the same occurrence).
#[derive(Clone, Debug)]
pub struct Instance {
    pub vertices: Vec<VertexId>,
    pub edges: Vec<EdgeId>,
    /// Target vertex for each pattern vertex, by pattern arena index
    /// (pattern graphs are append-only, so indices are dense). This is
    /// what lets expansion derive the child pattern per *extension key*
    /// instead of per instance.
    pub map: Vec<VertexId>,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.vertices == other.vertices && self.edges == other.edges
    }
}

impl Eq for Instance {}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.vertices.hash(state);
        self.edges.hash(state);
    }
}

/// How a grown edge attaches to an instance, relative to the instance's
/// pattern mapping: endpoint slots are pattern-vertex indices, or
/// [`ExtKey::NEW`] for the one endpoint outside the instance (whose
/// label is then `new_label`). Instances of the same substructure grown
/// with the same key induce the same child pattern, so expansion derives
/// one pattern graph per distinct key instead of one per grown instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExtKey {
    src: usize,
    dst: usize,
    elabel: u32,
    new_label: u32,
}

impl ExtKey {
    const NEW: usize = usize::MAX;

    /// The child pattern this key induces: the parent plus one edge (and
    /// possibly one appended vertex, whose slot index lines up with the
    /// appended `map` entry of every instance grown with this key).
    fn child_pattern(&self, parent: &Graph) -> Graph {
        let mut p = parent.clone();
        let s = if self.src == Self::NEW {
            p.add_vertex(VLabel(self.new_label))
        } else {
            VertexId(self.src as u32)
        };
        let d = if self.dst == Self::NEW {
            p.add_vertex(VLabel(self.new_label))
        } else {
            VertexId(self.dst as u32)
        };
        p.add_edge(s, d, ELabel(self.elabel));
        p
    }
}

impl Instance {
    /// A single-vertex instance.
    pub fn vertex(v: VertexId) -> Instance {
        Instance {
            vertices: vec![v],
            edges: Vec::new(),
            map: vec![v],
        }
    }

    /// Extends by one edge (and possibly one new endpoint), keeping the
    /// lists sorted and appending any new endpoint to `map`. Returns
    /// `None` if the edge is already present or touches neither instance
    /// vertex (callers enumerate incident edges, so a grown instance is
    /// always connected to this one).
    pub fn extended<G: GraphView>(&self, g: &G, e: EdgeId) -> Option<(Instance, ExtKey)> {
        if self.edges.binary_search(&e).is_ok() {
            return None;
        }
        let (s, d, l) = g.edge(e);
        let spos = self.map.iter().position(|&u| u == s);
        let dpos = if s == d {
            spos
        } else {
            self.map.iter().position(|&u| u == d)
        };
        let mut map = self.map.clone();
        let key = match (spos, dpos) {
            (Some(a), Some(b)) => ExtKey {
                src: a,
                dst: b,
                elabel: l.0,
                new_label: 0,
            },
            (Some(a), None) => {
                map.push(d);
                ExtKey {
                    src: a,
                    dst: ExtKey::NEW,
                    elabel: l.0,
                    new_label: g.vertex_label(d).0,
                }
            }
            (None, Some(b)) => {
                map.push(s);
                ExtKey {
                    src: ExtKey::NEW,
                    dst: b,
                    elabel: l.0,
                    new_label: g.vertex_label(s).0,
                }
            }
            (None, None) => return None,
        };
        let mut vertices = self.vertices.clone();
        for v in [s, d] {
            if let Err(pos) = vertices.binary_search(&v) {
                vertices.insert(pos, v);
            }
        }
        let mut edges = self.edges.clone();
        let pos = edges.binary_search(&e).unwrap_err();
        edges.insert(pos, e);
        Some((
            Instance {
                vertices,
                edges,
                map,
            },
            key,
        ))
    }

    /// True if this instance shares a vertex with `other`.
    pub fn overlaps(&self, other: &Instance) -> bool {
        // Both sorted: linear merge scan.
        let (mut i, mut j) = (0, 0);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The pattern graph this instance realizes in `g` (labels copied).
    pub fn pattern<G: GraphView>(&self, g: &G) -> Graph {
        if self.edges.is_empty() {
            let mut p = Graph::new();
            for &v in &self.vertices {
                p.add_vertex(g.vertex_label(v));
            }
            return p;
        }
        let (sub, vmap) = view::edge_subgraph(g, &self.edges);
        debug_assert_eq!(vmap.len(), self.vertices.len());
        sub
    }
}

/// A pattern with its instances in the input graph.
#[derive(Clone, Debug)]
pub struct Substructure {
    pub pattern: Graph,
    /// All discovered instances (may mutually overlap).
    pub instances: Vec<Instance>,
    /// Evaluation score (set by the search; higher is better).
    pub value: f64,
}

impl Substructure {
    /// Size of the pattern as SUBDUE counts it: vertices + edges.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Greedy maximal set of pairwise vertex-disjoint instances ("without
    /// allowing overlap", as the paper's experiments ran).
    pub fn disjoint_instances(&self) -> Vec<&Instance> {
        let mut used: FxHashSet<VertexId> = FxHashSet::default();
        let mut out = Vec::new();
        for inst in &self.instances {
            if inst.vertices.iter().any(|v| used.contains(v)) {
                continue;
            }
            used.extend(inst.vertices.iter().copied());
            out.push(inst);
        }
        out
    }

    /// Number of vertex-disjoint instances.
    pub fn disjoint_count(&self) -> usize {
        self.disjoint_instances().len()
    }
}

/// The initial substructure list: one per distinct vertex label, each
/// holding every vertex with that label as an instance. Ordered by
/// descending instance count.
pub fn initial_substructures<G: GraphView>(g: &G) -> Vec<Substructure> {
    let mut by_label: FxHashMap<u32, Vec<Instance>> = FxHashMap::default();
    for v in g.vertices() {
        by_label
            .entry(g.vertex_label(v).0)
            .or_default()
            .push(Instance::vertex(v));
    }
    let mut out: Vec<Substructure> = by_label
        .into_values()
        .map(|instances| {
            let pattern = instances[0].pattern(g);
            Substructure {
                pattern,
                instances,
                value: 0.0,
            }
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.instances.len()));
    out
}

/// Cap on instances kept per substructure. Dense uniformly-labeled
/// graphs have combinatorially many embeddings of symmetric patterns
/// (e.g. 2-edge paths through a hub); keeping them all makes expansion
/// quadratic-and-worse. Real SUBDUE applies the same kind of cap. The
/// cap only weakens instance counts (values become lower bounds), never
/// reports false instances.
pub const MAX_INSTANCES: usize = 4_000;

/// Expansion counters: how much work instance propagation did and how
/// much pattern re-derivation it avoided (the SUBDUE analogue of
/// `tnet-fsg`'s embedding counters).
#[derive(Clone, Debug, Default)]
pub struct SubdueStats {
    /// Instances grown by one adjacent edge.
    pub embeddings_extended: usize,
    /// Grown instances dropped because their group hit [`MAX_INSTANCES`].
    pub embeddings_spilled: usize,
    /// Child pattern graphs derived — one per distinct extension key, not
    /// one per grown instance, which is the point of keying.
    pub patterns_derived: usize,
}

impl SubdueStats {
    /// Folds this run's counters into a [`tnet_obs::MetricsRegistry`]
    /// under `subdue.*` names (the unified namespace; see DESIGN.md §10).
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add(
            "subdue.embeddings_extended",
            self.embeddings_extended as u64,
        );
        metrics.add("subdue.embeddings_spilled", self.embeddings_spilled as u64);
        metrics.add("subdue.patterns_derived", self.patterns_derived as u64);
    }
}

/// Expands a substructure: every instance is grown by every adjacent
/// unused edge; the grown instances are regrouped by pattern isomorphism
/// class. Instances identical as vertex/edge sets are deduplicated;
/// groups are truncated at [`MAX_INSTANCES`].
pub fn expand<G: GraphView>(g: &G, sub: &Substructure) -> Vec<Substructure> {
    expand_counted(g, sub, &mut SubdueStats::default())
}

/// As [`expand`], accumulating counters into `stats`.
///
/// Grown instances are first bucketed by [`ExtKey`] — how the new edge
/// attaches relative to the instance's pattern mapping — which determines
/// the child pattern up to the shared parent, so the pattern graph (and
/// its invariant hash) is derived once per key instead of once per
/// instance. Keys whose patterns land in the same isomorphism class are
/// then merged, translating instance maps onto the class representative's
/// vertex order so descendants keep extending consistently.
pub fn expand_counted<G: GraphView>(
    g: &G,
    sub: &Substructure,
    stats: &mut SubdueStats,
) -> Vec<Substructure> {
    let mut key_index: FxHashMap<ExtKey, usize> = FxHashMap::default();
    let mut groups: Vec<(ExtKey, Vec<Instance>)> = Vec::new();
    let mut seen: FxHashSet<(u64, usize)> = FxHashSet::default();
    for inst in &sub.instances {
        for &v in &inst.vertices {
            for e in g.incident_edges(v) {
                let Some((grown, key)) = inst.extended(g, e) else {
                    continue;
                };
                // Cheap structural dedup across the whole expansion:
                // hash of the sorted edge list (+ vertex count) is exact
                // because edge ids are unique.
                let h = {
                    use std::hash::{Hash, Hasher};
                    let mut hasher = tnet_graph::hash::FxHasher::default();
                    grown.edges.hash(&mut hasher);
                    hasher.finish() ^ grown.vertices.len() as u64
                };
                if !seen.insert((h, grown.edges.len())) {
                    continue;
                }
                stats.embeddings_extended += 1;
                let gi = *key_index.entry(key).or_insert_with(|| {
                    groups.push((key, Vec::new()));
                    groups.len() - 1
                });
                let group = &mut groups[gi].1;
                if group.len() < MAX_INSTANCES {
                    group.push(grown);
                } else {
                    stats.embeddings_spilled += 1;
                }
            }
        }
    }
    let mut classes: IsoClassMap<usize> = IsoClassMap::new();
    let mut out: Vec<Substructure> = Vec::new();
    for (key, instances) in groups {
        let pattern = key.child_pattern(&sub.pattern);
        stats.patterns_derived += 1;
        let slot = classes.entry_or_insert_with(&pattern, || usize::MAX);
        if *slot == usize::MAX {
            *slot = out.len();
            out.push(Substructure {
                pattern,
                instances,
                value: 0.0,
            });
        } else {
            let existing = &mut out[*slot];
            // Same class, different vertex order: translate this group's
            // maps through an isomorphism onto the representative. (Equal
            // vertex/edge counts make any monomorphism a bijection.)
            let iso = Matcher::new(&existing.pattern)
                .find(&pattern, Find::First)
                .pop()
                .expect("patterns share an isomorphism class");
            for mut inst in instances {
                inst.map = existing
                    .pattern
                    .vertices()
                    .map(|pv| inst.map[iso.image(pv).index()])
                    .collect();
                if existing.instances.len() < MAX_INSTANCES {
                    existing.instances.push(inst);
                } else {
                    stats.embeddings_spilled += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::are_isomorphic;

    #[test]
    fn instance_extension_sorted_and_deduped() {
        let g = shapes::chain(2, 0, 1);
        let v0 = g.vertices().next().unwrap();
        let e0 = g.edges().next().unwrap();
        let inst = Instance::vertex(v0);
        let (grown, _) = inst.extended(&g, e0).unwrap();
        assert_eq!(grown.vertices.len(), 2);
        assert_eq!(grown.edges, vec![e0]);
        assert_eq!(grown.map.len(), 2, "new endpoint appended to the map");
        assert!(grown.extended(&g, e0).is_none(), "edge reuse rejected");
        assert!(grown.vertices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn overlap_detection() {
        let a = Instance {
            vertices: vec![VertexId(0), VertexId(2)],
            edges: vec![],
            map: vec![],
        };
        let b = Instance {
            vertices: vec![VertexId(1), VertexId(2)],
            edges: vec![],
            map: vec![],
        };
        let c = Instance {
            vertices: vec![VertexId(3)],
            edges: vec![],
            map: vec![],
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn initial_substructures_by_label() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_vertex(VLabel(i % 2));
        }
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 2);
        assert_eq!(init[0].instances.len(), 3); // label 0: vertices 0,2,4
        assert_eq!(init[1].instances.len(), 2);
    }

    #[test]
    fn expansion_of_uniform_hub() {
        let g = shapes::hub_and_spoke(4, 0, 1);
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 1);
        assert_eq!(init[0].instances.len(), 5);
        let expanded = expand(&g, &init[0]);
        // Only one 1-edge pattern class exists (0 -1-> 0); 4 instances.
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].instances.len(), 4);
        assert_eq!(expanded[0].pattern.edge_count(), 1);
    }

    #[test]
    fn expansion_groups_by_label() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(1));
        g.add_edge(b, c, ELabel(2));
        let init = initial_substructures(&g);
        let expanded = expand(&g, &init[0]);
        assert_eq!(expanded.len(), 2, "two distinct edge-label classes");
        for s in &expanded {
            assert_eq!(s.instances.len(), 1);
        }
    }

    #[test]
    fn two_step_expansion_reaches_two_edge_patterns() {
        let g = shapes::chain(4, 0, 1);
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        assert_eq!(one_edge.len(), 1);
        let two_edge: Vec<Substructure> = expand(&g, &one_edge[0]);
        // Chains only: the 2-edge path pattern.
        assert_eq!(two_edge.len(), 1);
        assert!(are_isomorphic(
            &two_edge[0].pattern,
            &shapes::chain(2, 0, 1)
        ));
        assert_eq!(two_edge[0].instances.len(), 3);
    }

    #[test]
    fn disjoint_instances_greedy() {
        let g = shapes::chain(3, 0, 1); // v0-v1-v2-v3
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        let sub = &one_edge[0];
        assert_eq!(sub.instances.len(), 3);
        assert_eq!(sub.disjoint_count(), 2); // e0 and e2
    }

    #[test]
    fn keyed_expansion_matches_scratch_derivation() {
        // Reference expansion: derive every grown instance's pattern from
        // scratch (`Instance::pattern`) and group with the iso-class map,
        // as the pre-keyed implementation did. The keyed path must
        // produce the same classes with the same instance sets.
        use tnet_graph::generate::{random_transactions, RandomGraphConfig};
        let graphs = random_transactions(
            6,
            &RandomGraphConfig {
                vertices: 10,
                edges: 16,
                vertex_labels: 2,
                edge_labels: 2,
                self_loops: true,
            },
            97,
        );
        for g in &graphs {
            let mut frontier = initial_substructures(g);
            for _ in 0..3 {
                let mut next = Vec::new();
                for sub in &frontier {
                    let keyed = expand(g, sub);
                    // Scratch reference over the same parent.
                    let mut reference: IsoClassMap<Vec<Instance>> = IsoClassMap::new();
                    let mut seen: FxHashSet<Vec<EdgeId>> = FxHashSet::default();
                    for inst in &sub.instances {
                        for &v in &inst.vertices {
                            for e in g.incident_edges(v) {
                                let Some((grown, _)) = inst.extended(g, e) else {
                                    continue;
                                };
                                if !seen.insert(grown.edges.clone()) {
                                    continue;
                                }
                                let pattern = grown.pattern(g);
                                reference
                                    .entry_or_insert_with(&pattern, Vec::new)
                                    .push(grown);
                            }
                        }
                    }
                    let reference: Vec<(Graph, Vec<Instance>)> =
                        reference.into_iter_pairs().collect();
                    assert_eq!(keyed.len(), reference.len(), "class count");
                    for k in &keyed {
                        let (_, ref_insts) = reference
                            .iter()
                            .find(|(p, _)| are_isomorphic(p, &k.pattern))
                            .expect("keyed class missing from reference");
                        let mut a: Vec<_> = k
                            .instances
                            .iter()
                            .map(|i| (i.vertices.clone(), i.edges.clone()))
                            .collect();
                        let mut b: Vec<_> = ref_insts
                            .iter()
                            .map(|i| (i.vertices.clone(), i.edges.clone()))
                            .collect();
                        a.sort();
                        b.sort();
                        assert_eq!(a, b, "instance sets");
                        // Every kept map must be a valid embedding of the
                        // class pattern.
                        for inst in &k.instances {
                            assert_eq!(inst.map.len(), k.pattern.vertex_count());
                            for pv in k.pattern.vertices() {
                                assert_eq!(
                                    k.pattern.vertex_label(pv),
                                    g.vertex_label(inst.map[pv.index()])
                                );
                            }
                            for pe in k.pattern.edges() {
                                let (ps, pd, pl) = k.pattern.edge(pe);
                                let (ts, td) = (inst.map[ps.index()], inst.map[pd.index()]);
                                assert!(
                                    g.edges().any(|te| {
                                        let (s, d, l) = g.edge(te);
                                        s == ts && d == td && l == pl
                                    }),
                                    "map edge image missing in target"
                                );
                            }
                        }
                    }
                    next.extend(keyed);
                }
                frontier = next;
            }
        }
    }

    #[test]
    fn pattern_of_vertex_instance() {
        let mut g = Graph::new();
        let v = g.add_vertex(VLabel(9));
        let p = Instance::vertex(v).pattern(&g);
        assert_eq!(p.vertex_count(), 1);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.vertex_label(p.vertices().next().unwrap()), VLabel(9));
    }
}
