//! Substructures and instance-based expansion.
//!
//! SUBDUE represents a candidate as a pattern graph *plus the concrete
//! list of its instances* in the input graph. Expansion never runs a
//! global subgraph-isomorphism search: each instance is extended by one
//! adjacent edge, and the extended instances are regrouped by the
//! isomorphism class of their induced pattern. This is the core trick
//! that lets SUBDUE walk a single large graph.

use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{EdgeId, Graph, VertexId};
use tnet_graph::hash::{FxHashMap, FxHashSet};

/// One concrete occurrence of a pattern: the target vertices and edges it
/// covers. Vertex and edge lists are kept sorted so instances can be
/// deduplicated structurally.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Instance {
    pub vertices: Vec<VertexId>,
    pub edges: Vec<EdgeId>,
}

impl Instance {
    /// A single-vertex instance.
    pub fn vertex(v: VertexId) -> Instance {
        Instance {
            vertices: vec![v],
            edges: Vec::new(),
        }
    }

    /// Extends by one edge (and possibly one new endpoint), keeping the
    /// lists sorted. Returns `None` if the edge is already present.
    pub fn extended(&self, g: &Graph, e: EdgeId) -> Option<Instance> {
        if self.edges.binary_search(&e).is_ok() {
            return None;
        }
        let (s, d, _) = g.edge(e);
        let mut vertices = self.vertices.clone();
        for v in [s, d] {
            if let Err(pos) = vertices.binary_search(&v) {
                vertices.insert(pos, v);
            }
        }
        let mut edges = self.edges.clone();
        let pos = edges.binary_search(&e).unwrap_err();
        edges.insert(pos, e);
        Some(Instance { vertices, edges })
    }

    /// True if this instance shares a vertex with `other`.
    pub fn overlaps(&self, other: &Instance) -> bool {
        // Both sorted: linear merge scan.
        let (mut i, mut j) = (0, 0);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The pattern graph this instance realizes in `g` (labels copied).
    pub fn pattern(&self, g: &Graph) -> Graph {
        if self.edges.is_empty() {
            let mut p = Graph::new();
            for &v in &self.vertices {
                p.add_vertex(g.vertex_label(v));
            }
            return p;
        }
        let (sub, vmap) = g.edge_subgraph(&self.edges);
        debug_assert_eq!(vmap.len(), self.vertices.len());
        sub
    }
}

/// A pattern with its instances in the input graph.
#[derive(Clone, Debug)]
pub struct Substructure {
    pub pattern: Graph,
    /// All discovered instances (may mutually overlap).
    pub instances: Vec<Instance>,
    /// Evaluation score (set by the search; higher is better).
    pub value: f64,
}

impl Substructure {
    /// Size of the pattern as SUBDUE counts it: vertices + edges.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Greedy maximal set of pairwise vertex-disjoint instances ("without
    /// allowing overlap", as the paper's experiments ran).
    pub fn disjoint_instances(&self) -> Vec<&Instance> {
        let mut used: FxHashSet<VertexId> = FxHashSet::default();
        let mut out = Vec::new();
        for inst in &self.instances {
            if inst.vertices.iter().any(|v| used.contains(v)) {
                continue;
            }
            used.extend(inst.vertices.iter().copied());
            out.push(inst);
        }
        out
    }

    /// Number of vertex-disjoint instances.
    pub fn disjoint_count(&self) -> usize {
        self.disjoint_instances().len()
    }
}

/// The initial substructure list: one per distinct vertex label, each
/// holding every vertex with that label as an instance. Ordered by
/// descending instance count.
pub fn initial_substructures(g: &Graph) -> Vec<Substructure> {
    let mut by_label: FxHashMap<u32, Vec<Instance>> = FxHashMap::default();
    for v in g.vertices() {
        by_label
            .entry(g.vertex_label(v).0)
            .or_default()
            .push(Instance::vertex(v));
    }
    let mut out: Vec<Substructure> = by_label
        .into_values()
        .map(|instances| {
            let pattern = instances[0].pattern(g);
            Substructure {
                pattern,
                instances,
                value: 0.0,
            }
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.instances.len()));
    out
}

/// Cap on instances kept per substructure. Dense uniformly-labeled
/// graphs have combinatorially many embeddings of symmetric patterns
/// (e.g. 2-edge paths through a hub); keeping them all makes expansion
/// quadratic-and-worse. Real SUBDUE applies the same kind of cap. The
/// cap only weakens instance counts (values become lower bounds), never
/// reports false instances.
pub const MAX_INSTANCES: usize = 4_000;

/// Expands a substructure: every instance is grown by every adjacent
/// unused edge; the grown instances are regrouped by pattern isomorphism
/// class. Instances identical as vertex/edge sets are deduplicated;
/// groups are truncated at [`MAX_INSTANCES`].
pub fn expand(g: &Graph, sub: &Substructure) -> Vec<Substructure> {
    let mut groups: IsoClassMap<Vec<Instance>> = IsoClassMap::new();
    let mut seen: FxHashSet<(u64, usize)> = FxHashSet::default();
    for inst in &sub.instances {
        for &v in &inst.vertices {
            for e in g.incident_edges(v) {
                let Some(grown) = inst.extended(g, e) else {
                    continue;
                };
                // Cheap structural dedup across the whole expansion:
                // hash of the sorted edge list (+ vertex count) is exact
                // because edge ids are unique.
                let h = {
                    use std::hash::{Hash, Hasher};
                    let mut hasher = tnet_graph::hash::FxHasher::default();
                    grown.edges.hash(&mut hasher);
                    hasher.finish() ^ grown.vertices.len() as u64
                };
                if !seen.insert((h, grown.edges.len())) {
                    continue;
                }
                let pattern = grown.pattern(g);
                let group = groups.entry_or_insert_with(&pattern, Vec::new);
                if group.len() < MAX_INSTANCES {
                    group.push(grown);
                }
            }
        }
    }
    groups
        .into_iter_pairs()
        .map(|(pattern, instances)| Substructure {
            pattern,
            instances,
            value: 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::are_isomorphic;

    #[test]
    fn instance_extension_sorted_and_deduped() {
        let g = shapes::chain(2, 0, 1);
        let v0 = g.vertices().next().unwrap();
        let e0 = g.edges().next().unwrap();
        let inst = Instance::vertex(v0);
        let grown = inst.extended(&g, e0).unwrap();
        assert_eq!(grown.vertices.len(), 2);
        assert_eq!(grown.edges, vec![e0]);
        assert!(grown.extended(&g, e0).is_none(), "edge reuse rejected");
        assert!(grown.vertices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn overlap_detection() {
        let a = Instance {
            vertices: vec![VertexId(0), VertexId(2)],
            edges: vec![],
        };
        let b = Instance {
            vertices: vec![VertexId(1), VertexId(2)],
            edges: vec![],
        };
        let c = Instance {
            vertices: vec![VertexId(3)],
            edges: vec![],
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn initial_substructures_by_label() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_vertex(VLabel(i % 2));
        }
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 2);
        assert_eq!(init[0].instances.len(), 3); // label 0: vertices 0,2,4
        assert_eq!(init[1].instances.len(), 2);
    }

    #[test]
    fn expansion_of_uniform_hub() {
        let g = shapes::hub_and_spoke(4, 0, 1);
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 1);
        assert_eq!(init[0].instances.len(), 5);
        let expanded = expand(&g, &init[0]);
        // Only one 1-edge pattern class exists (0 -1-> 0); 4 instances.
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].instances.len(), 4);
        assert_eq!(expanded[0].pattern.edge_count(), 1);
    }

    #[test]
    fn expansion_groups_by_label() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(1));
        g.add_edge(b, c, ELabel(2));
        let init = initial_substructures(&g);
        let expanded = expand(&g, &init[0]);
        assert_eq!(expanded.len(), 2, "two distinct edge-label classes");
        for s in &expanded {
            assert_eq!(s.instances.len(), 1);
        }
    }

    #[test]
    fn two_step_expansion_reaches_two_edge_patterns() {
        let g = shapes::chain(4, 0, 1);
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        assert_eq!(one_edge.len(), 1);
        let two_edge: Vec<Substructure> = expand(&g, &one_edge[0]);
        // Chains only: the 2-edge path pattern.
        assert_eq!(two_edge.len(), 1);
        assert!(are_isomorphic(
            &two_edge[0].pattern,
            &shapes::chain(2, 0, 1)
        ));
        assert_eq!(two_edge[0].instances.len(), 3);
    }

    #[test]
    fn disjoint_instances_greedy() {
        let g = shapes::chain(3, 0, 1); // v0-v1-v2-v3
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        let sub = &one_edge[0];
        assert_eq!(sub.instances.len(), 3);
        assert_eq!(sub.disjoint_count(), 2); // e0 and e2
    }

    #[test]
    fn pattern_of_vertex_instance() {
        let mut g = Graph::new();
        let v = g.add_vertex(VLabel(9));
        let p = Instance::vertex(v).pattern(&g);
        assert_eq!(p.vertex_count(), 1);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.vertex_label(p.vertices().next().unwrap()), VLabel(9));
    }
}
