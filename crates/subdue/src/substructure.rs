//! Substructures and instance-based expansion.
//!
//! SUBDUE represents a candidate as a pattern graph *plus the concrete
//! list of its instances* in the input graph. Expansion never runs a
//! global subgraph-isomorphism search: each instance is extended by one
//! adjacent edge, and the extended instances are regrouped by the
//! isomorphism class of their induced pattern. This is the core trick
//! that lets SUBDUE walk a single large graph.

use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, EdgeId, Graph, VLabel, VertexId};
use tnet_graph::hash::{FxHashMap, FxHashSet};
use tnet_graph::iso::{Find, Matcher};
use tnet_graph::view::{self, GraphView};

/// One concrete occurrence of a pattern: the target vertices and edges it
/// covers, plus the mapping from pattern vertices to target vertices.
/// Vertex and edge lists are kept sorted so instances can be deduplicated
/// structurally; equality and hashing ignore `map` (two automorphic
/// mappings of the same vertex/edge sets are the same occurrence).
#[derive(Clone, Debug)]
pub struct Instance {
    pub vertices: Vec<VertexId>,
    pub edges: Vec<EdgeId>,
    /// Target vertex for each pattern vertex, by pattern arena index
    /// (pattern graphs are append-only, so indices are dense). This is
    /// what lets expansion derive the child pattern per *extension key*
    /// instead of per instance.
    pub map: Vec<VertexId>,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.vertices == other.vertices && self.edges == other.edges
    }
}

impl Eq for Instance {}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.vertices.hash(state);
        self.edges.hash(state);
    }
}

/// How a grown edge attaches to an instance, relative to the instance's
/// pattern mapping: endpoint slots are pattern-vertex indices, or
/// [`ExtKey::NEW`] for the one endpoint outside the instance (whose
/// label is then `new_label`). Instances of the same substructure grown
/// with the same key induce the same child pattern, so expansion derives
/// one pattern graph per distinct key instead of one per grown instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExtKey {
    src: usize,
    dst: usize,
    elabel: u32,
    new_label: u32,
}

impl ExtKey {
    const NEW: usize = usize::MAX;

    /// True if this extension appends a new endpoint vertex (one slot is
    /// outside the instance).
    fn adds_vertex(&self) -> bool {
        self.src == Self::NEW || self.dst == Self::NEW
    }

    /// The child pattern this key induces: the parent plus one edge (and
    /// possibly one appended vertex, whose slot index lines up with the
    /// appended `map` entry of every instance grown with this key).
    fn child_pattern(&self, parent: &Graph) -> Graph {
        let mut p = parent.clone();
        let s = if self.src == Self::NEW {
            p.add_vertex(VLabel(self.new_label))
        } else {
            VertexId(self.src as u32)
        };
        let d = if self.dst == Self::NEW {
            p.add_vertex(VLabel(self.new_label))
        } else {
            VertexId(self.dst as u32)
        };
        p.add_edge(s, d, ELabel(self.elabel));
        p
    }
}

impl Instance {
    /// A single-vertex instance.
    pub fn vertex(v: VertexId) -> Instance {
        Instance {
            vertices: vec![v],
            edges: Vec::new(),
            map: vec![v],
        }
    }

    /// Extends by one edge (and possibly one new endpoint), keeping the
    /// lists sorted and appending any new endpoint to `map`. Returns
    /// `None` if the edge is already present or touches neither instance
    /// vertex (callers enumerate incident edges, so a grown instance is
    /// always connected to this one).
    pub fn extended<G: GraphView>(&self, g: &G, e: EdgeId) -> Option<(Instance, ExtKey)> {
        let key = self.probe_extension(g, e)?;
        Some((self.materialize_extension(g, e, &key), key))
    }

    /// Probe stage of [`Instance::extended`]: classifies how `e` attaches
    /// (rejecting reused edges and non-incident ones) without cloning any
    /// of the instance's three vectors. [`expand_counted`] uses this to
    /// dedup and cap-check an extension *before* paying for
    /// [`Instance::materialize_extension`] — on dense expansions most
    /// attempts die here.
    pub fn probe_extension<G: GraphView>(&self, g: &G, e: EdgeId) -> Option<ExtKey> {
        if self.edges.binary_search(&e).is_ok() {
            return None;
        }
        let (s, d, l) = g.edge(e);
        let spos = self.map.iter().position(|&u| u == s);
        let dpos = if s == d {
            spos
        } else {
            self.map.iter().position(|&u| u == d)
        };
        match (spos, dpos) {
            (Some(a), Some(b)) => Some(ExtKey {
                src: a,
                dst: b,
                elabel: l.0,
                new_label: 0,
            }),
            (Some(a), None) => Some(ExtKey {
                src: a,
                dst: ExtKey::NEW,
                elabel: l.0,
                new_label: g.vertex_label(d).0,
            }),
            (None, Some(b)) => Some(ExtKey {
                src: ExtKey::NEW,
                dst: b,
                elabel: l.0,
                new_label: g.vertex_label(s).0,
            }),
            (None, None) => None,
        }
    }

    /// Materialize stage of [`Instance::extended`]: builds the grown
    /// instance for an edge that [`Instance::probe_extension`] accepted
    /// with `key`.
    pub fn materialize_extension<G: GraphView>(&self, g: &G, e: EdgeId, key: &ExtKey) -> Instance {
        let (s, d, _) = g.edge(e);
        let mut map = self.map.clone();
        if key.dst == ExtKey::NEW {
            map.push(d);
        } else if key.src == ExtKey::NEW {
            map.push(s);
        }
        let mut vertices = self.vertices.clone();
        for v in [s, d] {
            if let Err(pos) = vertices.binary_search(&v) {
                vertices.insert(pos, v);
            }
        }
        let mut edges = self.edges.clone();
        let pos = edges.binary_search(&e).unwrap_err();
        edges.insert(pos, e);
        Instance {
            vertices,
            edges,
            map,
        }
    }

    /// True if this instance shares a vertex with `other`.
    pub fn overlaps(&self, other: &Instance) -> bool {
        // Both sorted: linear merge scan.
        let (mut i, mut j) = (0, 0);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The pattern graph this instance realizes in `g` (labels copied).
    pub fn pattern<G: GraphView>(&self, g: &G) -> Graph {
        if self.edges.is_empty() {
            let mut p = Graph::new();
            for &v in &self.vertices {
                p.add_vertex(g.vertex_label(v));
            }
            return p;
        }
        let (sub, vmap) = view::edge_subgraph(g, &self.edges);
        debug_assert_eq!(vmap.len(), self.vertices.len());
        sub
    }
}

/// A pattern with its instances in the input graph.
#[derive(Clone, Debug)]
pub struct Substructure {
    pub pattern: Graph,
    /// All discovered instances (may mutually overlap).
    pub instances: Vec<Instance>,
    /// Evaluation score (set by the search; higher is better).
    pub value: f64,
}

impl Substructure {
    /// Size of the pattern as SUBDUE counts it: vertices + edges.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Greedy maximal set of pairwise vertex-disjoint instances ("without
    /// allowing overlap", as the paper's experiments ran). Vertex ids are
    /// dense, so "used" is a `u64` bitset — one load + mask per probe
    /// instead of a hash lookup. This runs once per (candidate,
    /// evaluation) in the beam loop, which made the hashing version a
    /// profile hotspot on instance-heavy graphs.
    pub fn disjoint_instances(&self) -> Vec<&Instance> {
        let max_id = self
            .instances
            .iter()
            .filter_map(|i| i.vertices.last())
            .map(|v| v.0 as usize)
            .max()
            .unwrap_or(0);
        let mut used = vec![0u64; max_id / 64 + 1];
        let mut out = Vec::new();
        for inst in &self.instances {
            if inst
                .vertices
                .iter()
                .any(|v| used[v.0 as usize / 64] >> (v.0 % 64) & 1 == 1)
            {
                continue;
            }
            for v in &inst.vertices {
                used[v.0 as usize / 64] |= 1u64 << (v.0 % 64);
            }
            out.push(inst);
        }
        out
    }

    /// Number of vertex-disjoint instances.
    pub fn disjoint_count(&self) -> usize {
        self.disjoint_instances().len()
    }
}

/// The initial substructure list: one per distinct vertex label, each
/// holding every vertex with that label as an instance. Ordered by
/// descending instance count.
pub fn initial_substructures<G: GraphView>(g: &G) -> Vec<Substructure> {
    let mut by_label: FxHashMap<u32, Vec<Instance>> = FxHashMap::default();
    for v in g.vertices() {
        by_label
            .entry(g.vertex_label(v).0)
            .or_default()
            .push(Instance::vertex(v));
    }
    let mut out: Vec<Substructure> = by_label
        .into_values()
        .map(|instances| {
            let pattern = instances[0].pattern(g);
            Substructure {
                pattern,
                instances,
                value: 0.0,
            }
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.instances.len()));
    out
}

/// Cap on instances kept per substructure. Dense uniformly-labeled
/// graphs have combinatorially many embeddings of symmetric patterns
/// (e.g. 2-edge paths through a hub); keeping them all makes expansion
/// quadratic-and-worse. Real SUBDUE applies the same kind of cap. The
/// cap only weakens instance counts (values become lower bounds), never
/// reports false instances.
pub const MAX_INSTANCES: usize = 4_000;

/// Expansion counters: how much work instance propagation did and how
/// much pattern re-derivation it avoided (the SUBDUE analogue of
/// `tnet-fsg`'s embedding counters).
#[derive(Clone, Debug, Default)]
pub struct SubdueStats {
    /// Instances grown by one adjacent edge.
    pub embeddings_extended: usize,
    /// Grown instances dropped because their group hit [`MAX_INSTANCES`].
    pub embeddings_spilled: usize,
    /// Child pattern graphs derived — one per distinct extension key, not
    /// one per grown instance, which is the point of keying.
    pub patterns_derived: usize,
    /// Set-cover VF2 existence checks skipped because a pattern vertex
    /// had no fingerprint-compatible example vertex
    /// ([`tnet_graph::fingerprint::may_embed`] said no).
    pub fingerprint_rejects: usize,
}

impl SubdueStats {
    /// Folds this run's counters into a [`tnet_obs::MetricsRegistry`]
    /// under `subdue.*` names (the unified namespace; see DESIGN.md §10).
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add(
            "subdue.embeddings_extended",
            self.embeddings_extended as u64,
        );
        metrics.add("subdue.embeddings_spilled", self.embeddings_spilled as u64);
        metrics.add("subdue.patterns_derived", self.patterns_derived as u64);
        metrics.add(
            "subdue.fingerprint_rejects",
            self.fingerprint_rejects as u64,
        );
    }
}

/// Expands a substructure: every instance is grown by every adjacent
/// unused edge; the grown instances are regrouped by pattern isomorphism
/// class. Instances identical as vertex/edge sets are deduplicated;
/// groups are truncated at [`MAX_INSTANCES`].
pub fn expand<G: GraphView>(g: &G, sub: &Substructure) -> Vec<Substructure> {
    expand_counted(g, sub, &mut SubdueStats::default())
}

/// As [`expand`], accumulating counters into `stats`. Equivalent to
/// materializing every child of [`expand_deferred`].
pub fn expand_counted<G: GraphView>(
    g: &G,
    sub: &Substructure,
    stats: &mut SubdueStats,
) -> Vec<Substructure> {
    expand_deferred(g, sub, stats)
        .into_iter()
        .map(|child| {
            let instances = child.materialize(g, sub);
            Substructure {
                pattern: child.pattern,
                instances,
                value: 0.0,
            }
        })
        .collect()
}

/// One grown-but-unbuilt instance: the parent instance's index plus the
/// extension edge. Everything else about the grown instance (vertex set,
/// edge set, map) is derivable from those two values and the group's
/// [`ExtKey`].
type Ext = (u32, EdgeId);

/// A keyed group of deferred instances inside a [`DeferredChild`].
struct DeferredGroup {
    key: ExtKey,
    /// Translation onto the class representative's vertex order:
    /// representative map slot `i` reads this group's own map slot
    /// `perm[i]`. `None` for the representative group itself.
    perm: Option<Vec<u32>>,
    exts: Vec<Ext>,
}

/// An expansion child whose instance lists have not been materialized.
///
/// The beam search evaluates every child of an expansion but keeps only
/// the few that enter the beam or the best list, so building full
/// [`Instance`] vectors (three allocations each) for all of them is
/// mostly wasted work — on dense graphs hundreds of thousands per
/// search. A deferred child carries `(parent instance, edge)` pairs
/// instead; [`DeferredChild::disjoint_count`] scores it in place and
/// [`DeferredChild::materialize`] builds real instances only for
/// survivors, producing exactly what the eager path produced.
pub struct DeferredChild {
    pub pattern: Graph,
    groups: Vec<DeferredGroup>,
    /// Instance count after the [`MAX_INSTANCES`] cap.
    count: usize,
}

fn bit_test(used: &[u64], v: VertexId) -> bool {
    used[v.0 as usize / 64] >> (v.0 % 64) & 1 == 1
}

fn bit_set(used: &mut [u64], v: VertexId) {
    used[v.0 as usize / 64] |= 1u64 << (v.0 % 64);
}

impl DeferredChild {
    /// Size of the pattern as SUBDUE counts it: vertices + edges.
    pub fn size(&self) -> usize {
        self.pattern.size()
    }

    /// Number of instances a materialization would produce.
    pub fn instance_count(&self) -> usize {
        self.count
    }

    /// Greedy vertex-disjoint instance count, identical to materializing
    /// and calling [`Substructure::disjoint_count`]: a grown instance's
    /// vertex set is its parent's plus the extension edge's endpoints,
    /// and the greedy scan runs in the same materialization order.
    pub fn disjoint_count<G: GraphView>(&self, g: &G, parent: &Substructure) -> usize {
        let mut max_id = 0usize;
        for group in &self.groups {
            for &(ii, e) in &group.exts {
                let inst = &parent.instances[ii as usize];
                if let Some(v) = inst.vertices.last() {
                    max_id = max_id.max(v.0 as usize);
                }
                let (s, d, _) = g.edge(e);
                max_id = max_id.max(s.0 as usize).max(d.0 as usize);
            }
        }
        let mut used = vec![0u64; max_id / 64 + 1];
        let mut n = 0usize;
        for group in &self.groups {
            for &(ii, e) in &group.exts {
                let inst = &parent.instances[ii as usize];
                let (s, d, _) = g.edge(e);
                if inst.vertices.iter().any(|&v| bit_test(&used, v))
                    || bit_test(&used, s)
                    || bit_test(&used, d)
                {
                    continue;
                }
                for &v in &inst.vertices {
                    bit_set(&mut used, v);
                }
                bit_set(&mut used, s);
                bit_set(&mut used, d);
                n += 1;
            }
        }
        n
    }

    /// Builds the concrete instance list (in the order and under the cap
    /// the eager expansion used).
    pub fn materialize<G: GraphView>(&self, g: &G, parent: &Substructure) -> Vec<Instance> {
        let mut out = Vec::with_capacity(self.count);
        for group in &self.groups {
            for &(ii, e) in &group.exts {
                let mut inst =
                    parent.instances[ii as usize].materialize_extension(g, e, &group.key);
                if let Some(perm) = &group.perm {
                    inst.map = perm.iter().map(|&i| inst.map[i as usize]).collect();
                }
                out.push(inst);
            }
        }
        out
    }
}

/// The expansion core behind [`expand_counted`]: grown instances are
/// bucketed by [`ExtKey`] — how the new edge attaches relative to the
/// instance's pattern mapping — which determines the child pattern up to
/// the shared parent, so the pattern graph (and its invariant hash) is
/// derived once per key instead of once per instance. Keys whose
/// patterns land in the same isomorphism class are then merged; the map
/// translation onto the class representative's vertex order is recorded
/// as a permutation and applied at materialization.
pub fn expand_deferred<G: GraphView>(
    g: &G,
    sub: &Substructure,
    stats: &mut SubdueStats,
) -> Vec<DeferredChild> {
    let mut key_index: FxHashMap<ExtKey, usize> = FxHashMap::default();
    let mut groups: Vec<(ExtKey, Vec<Ext>)> = Vec::new();
    let mut seen: FxHashSet<(u64, usize)> = FxHashSet::default();
    fn edge_hash(e: EdgeId) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = tnet_graph::hash::FxHasher::default();
        e.hash(&mut hasher);
        hasher.finish()
    }
    for (ii, inst) in sub.instances.iter().enumerate() {
        // Commutative set hash of the parent's edge ids: the grown edge
        // set's hash is then one XOR per attempt instead of rehashing
        // the whole list.
        let base = inst.edges.iter().fold(0u64, |a, &e| a ^ edge_hash(e));
        for &v in &inst.vertices {
            for e in g.incident_edges(v) {
                // Probe first: the key, dedup hash, and cap check all
                // come from the parent's vectors plus `e`; nothing is
                // allocated per attempt. On dense expansions most
                // attempts are duplicates and die here.
                let Some(key) = inst.probe_extension(g, e) else {
                    continue;
                };
                // Cheap structural dedup across the whole expansion:
                // hash of the grown edge set plus the grown vertex count
                // is exact (up to 64-bit collisions) because edge ids
                // are unique.
                let h =
                    base ^ edge_hash(e) ^ (inst.vertices.len() + key.adds_vertex() as usize) as u64;
                if !seen.insert((h, inst.edges.len() + 1)) {
                    continue;
                }
                stats.embeddings_extended += 1;
                let gi = *key_index.entry(key).or_insert_with(|| {
                    groups.push((key, Vec::new()));
                    groups.len() - 1
                });
                let group = &mut groups[gi].1;
                if group.len() < MAX_INSTANCES {
                    group.push((ii as u32, e));
                } else {
                    stats.embeddings_spilled += 1;
                }
            }
        }
    }
    let mut classes: IsoClassMap<usize> = IsoClassMap::new();
    let mut out: Vec<DeferredChild> = Vec::new();
    for (key, mut exts) in groups {
        let pattern = key.child_pattern(&sub.pattern);
        stats.patterns_derived += 1;
        let slot = classes.entry_or_insert_with(&pattern, || usize::MAX);
        if *slot == usize::MAX {
            *slot = out.len();
            let count = exts.len();
            out.push(DeferredChild {
                pattern,
                groups: vec![DeferredGroup {
                    key,
                    perm: None,
                    exts,
                }],
                count,
            });
        } else {
            let child = &mut out[*slot];
            // Same class, different vertex order: record the isomorphism
            // onto the representative as a map permutation. (Equal
            // vertex/edge counts make any monomorphism a bijection.)
            let iso = Matcher::new(&child.pattern)
                .find(&pattern, Find::First)
                .pop()
                .expect("patterns share an isomorphism class");
            let perm: Vec<u32> = child
                .pattern
                .vertices()
                .map(|pv| iso.image(pv).index() as u32)
                .collect();
            let kept = exts.len().min(MAX_INSTANCES.saturating_sub(child.count));
            stats.embeddings_spilled += exts.len() - kept;
            exts.truncate(kept);
            child.count += kept;
            if kept > 0 {
                child.groups.push(DeferredGroup {
                    key,
                    perm: Some(perm),
                    exts,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::are_isomorphic;

    #[test]
    fn instance_extension_sorted_and_deduped() {
        let g = shapes::chain(2, 0, 1);
        let v0 = g.vertices().next().unwrap();
        let e0 = g.edges().next().unwrap();
        let inst = Instance::vertex(v0);
        let (grown, _) = inst.extended(&g, e0).unwrap();
        assert_eq!(grown.vertices.len(), 2);
        assert_eq!(grown.edges, vec![e0]);
        assert_eq!(grown.map.len(), 2, "new endpoint appended to the map");
        assert!(grown.extended(&g, e0).is_none(), "edge reuse rejected");
        assert!(grown.vertices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn overlap_detection() {
        let a = Instance {
            vertices: vec![VertexId(0), VertexId(2)],
            edges: vec![],
            map: vec![],
        };
        let b = Instance {
            vertices: vec![VertexId(1), VertexId(2)],
            edges: vec![],
            map: vec![],
        };
        let c = Instance {
            vertices: vec![VertexId(3)],
            edges: vec![],
            map: vec![],
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn initial_substructures_by_label() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_vertex(VLabel(i % 2));
        }
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 2);
        assert_eq!(init[0].instances.len(), 3); // label 0: vertices 0,2,4
        assert_eq!(init[1].instances.len(), 2);
    }

    #[test]
    fn expansion_of_uniform_hub() {
        let g = shapes::hub_and_spoke(4, 0, 1);
        let init = initial_substructures(&g);
        assert_eq!(init.len(), 1);
        assert_eq!(init[0].instances.len(), 5);
        let expanded = expand(&g, &init[0]);
        // Only one 1-edge pattern class exists (0 -1-> 0); 4 instances.
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].instances.len(), 4);
        assert_eq!(expanded[0].pattern.edge_count(), 1);
    }

    #[test]
    fn expansion_groups_by_label() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(1));
        g.add_edge(b, c, ELabel(2));
        let init = initial_substructures(&g);
        let expanded = expand(&g, &init[0]);
        assert_eq!(expanded.len(), 2, "two distinct edge-label classes");
        for s in &expanded {
            assert_eq!(s.instances.len(), 1);
        }
    }

    #[test]
    fn two_step_expansion_reaches_two_edge_patterns() {
        let g = shapes::chain(4, 0, 1);
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        assert_eq!(one_edge.len(), 1);
        let two_edge: Vec<Substructure> = expand(&g, &one_edge[0]);
        // Chains only: the 2-edge path pattern.
        assert_eq!(two_edge.len(), 1);
        assert!(are_isomorphic(
            &two_edge[0].pattern,
            &shapes::chain(2, 0, 1)
        ));
        assert_eq!(two_edge[0].instances.len(), 3);
    }

    #[test]
    fn disjoint_instances_greedy() {
        let g = shapes::chain(3, 0, 1); // v0-v1-v2-v3
        let init = initial_substructures(&g);
        let one_edge = expand(&g, &init[0]);
        let sub = &one_edge[0];
        assert_eq!(sub.instances.len(), 3);
        assert_eq!(sub.disjoint_count(), 2); // e0 and e2
    }

    #[test]
    fn keyed_expansion_matches_scratch_derivation() {
        // Reference expansion: derive every grown instance's pattern from
        // scratch (`Instance::pattern`) and group with the iso-class map,
        // as the pre-keyed implementation did. The keyed path must
        // produce the same classes with the same instance sets.
        use tnet_graph::generate::{random_transactions, RandomGraphConfig};
        let graphs = random_transactions(
            6,
            &RandomGraphConfig {
                vertices: 10,
                edges: 16,
                vertex_labels: 2,
                edge_labels: 2,
                self_loops: true,
            },
            97,
        );
        for g in &graphs {
            let mut frontier = initial_substructures(g);
            for _ in 0..3 {
                let mut next = Vec::new();
                for sub in &frontier {
                    let keyed = expand(g, sub);
                    // Scratch reference over the same parent.
                    let mut reference: IsoClassMap<Vec<Instance>> = IsoClassMap::new();
                    let mut seen: FxHashSet<Vec<EdgeId>> = FxHashSet::default();
                    for inst in &sub.instances {
                        for &v in &inst.vertices {
                            for e in g.incident_edges(v) {
                                let Some((grown, _)) = inst.extended(g, e) else {
                                    continue;
                                };
                                if !seen.insert(grown.edges.clone()) {
                                    continue;
                                }
                                let pattern = grown.pattern(g);
                                reference
                                    .entry_or_insert_with(&pattern, Vec::new)
                                    .push(grown);
                            }
                        }
                    }
                    let reference: Vec<(Graph, Vec<Instance>)> =
                        reference.into_iter_pairs().collect();
                    assert_eq!(keyed.len(), reference.len(), "class count");
                    for k in &keyed {
                        let (_, ref_insts) = reference
                            .iter()
                            .find(|(p, _)| are_isomorphic(p, &k.pattern))
                            .expect("keyed class missing from reference");
                        let mut a: Vec<_> = k
                            .instances
                            .iter()
                            .map(|i| (i.vertices.clone(), i.edges.clone()))
                            .collect();
                        let mut b: Vec<_> = ref_insts
                            .iter()
                            .map(|i| (i.vertices.clone(), i.edges.clone()))
                            .collect();
                        a.sort();
                        b.sort();
                        assert_eq!(a, b, "instance sets");
                        // Every kept map must be a valid embedding of the
                        // class pattern.
                        for inst in &k.instances {
                            assert_eq!(inst.map.len(), k.pattern.vertex_count());
                            for pv in k.pattern.vertices() {
                                assert_eq!(
                                    k.pattern.vertex_label(pv),
                                    g.vertex_label(inst.map[pv.index()])
                                );
                            }
                            for pe in k.pattern.edges() {
                                let (ps, pd, pl) = k.pattern.edge(pe);
                                let (ts, td) = (inst.map[ps.index()], inst.map[pd.index()]);
                                assert!(
                                    g.edges().any(|te| {
                                        let (s, d, l) = g.edge(te);
                                        s == ts && d == td && l == pl
                                    }),
                                    "map edge image missing in target"
                                );
                            }
                        }
                    }
                    next.extend(keyed);
                }
                frontier = next;
            }
        }
    }

    #[test]
    fn pattern_of_vertex_instance() {
        let mut g = Graph::new();
        let v = g.add_vertex(VLabel(9));
        let p = Instance::vertex(v).pattern(&g);
        assert_eq!(p.vertex_count(), 1);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.vertex_label(p.vertices().next().unwrap()), VLabel(9));
    }
}
