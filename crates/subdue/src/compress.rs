//! Graph compression and hierarchical discovery.
//!
//! "By replacing previously discovered substructures in the data,
//! multiple passes produce a hierarchical description of the structural
//! regularities in the data."

use crate::discover::{discover, SubdueConfig, SubdueError, SubdueOutput};
use crate::substructure::Substructure;
use tnet_graph::graph::{Graph, VLabel, VertexId};
use tnet_graph::hash::FxHashMap;

/// Replaces each vertex-disjoint instance of `sub` in `g` with a single
/// marker vertex labeled `marker`. Edges between an instance and the rest
/// of the graph are re-attached to the marker vertex; edges internal to an
/// instance disappear. Returns the compressed graph.
pub fn compress(g: &Graph, sub: &Substructure, marker: VLabel) -> Graph {
    let disjoint = sub.disjoint_instances();
    // Map every absorbed vertex to its instance index, and collect the
    // edges that belong to the instances. Only those edges disappear: a
    // parallel edge between two absorbed vertices that is *not* part of
    // the instance is real traffic and re-attaches to the marker (as a
    // self-loop when both endpoints collapse into one instance).
    let mut absorbed: FxHashMap<VertexId, usize> = FxHashMap::default();
    let mut absorbed_edges: tnet_graph::hash::FxHashSet<tnet_graph::graph::EdgeId> =
        Default::default();
    for (i, inst) in disjoint.iter().enumerate() {
        for &v in &inst.vertices {
            absorbed.insert(v, i);
        }
        absorbed_edges.extend(inst.edges.iter().copied());
    }
    let mut out = Graph::new();
    let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut markers: Vec<Option<VertexId>> = vec![None; disjoint.len()];
    // Keep untouched vertices.
    for v in g.vertices() {
        if !absorbed.contains_key(&v) {
            vmap.insert(v, out.add_vertex(g.vertex_label(v)));
        }
    }
    let mut marker_of = |i: usize, out: &mut Graph| -> VertexId {
        if let Some(m) = markers[i] {
            m
        } else {
            let m = out.add_vertex(marker);
            markers[i] = Some(m);
            m
        }
    };
    for e in g.edges() {
        if absorbed_edges.contains(&e) {
            continue; // an instance's own edge: absorbed
        }
        let (s, d, l) = g.edge(e);
        let ns = match absorbed.get(&s) {
            Some(&i) => marker_of(i, &mut out),
            None => vmap[&s],
        };
        let nd = match absorbed.get(&d) {
            Some(&j) => marker_of(j, &mut out),
            None => vmap[&d],
        };
        out.add_edge(ns, nd, l);
    }
    // Instances with no external edges still need their marker vertex.
    for i in 0..disjoint.len() {
        marker_of(i, &mut out);
    }
    out
}

/// One level of a hierarchical description.
#[derive(Clone, Debug)]
pub struct HierarchyLevel {
    /// Best substructure discovered at this level.
    pub substructure: Substructure,
    /// Marker label it was replaced with.
    pub marker: VLabel,
    /// Graph size (vertices + edges) after compression.
    pub compressed_size: usize,
    /// Full discovery output of the pass.
    pub output: SubdueOutput,
}

/// Runs `passes` discover-and-compress rounds, producing SUBDUE's
/// hierarchical description. Stops early when a pass finds nothing or
/// compression stops shrinking the graph. Marker labels start above the
/// graph's current maximum vertex label.
///
/// # Errors
/// Propagates any [`SubdueError`] from a discovery pass (memory budget,
/// cancellation, injected fault); levels completed before the failing
/// pass are lost — rerun with a looser budget to recover them.
pub fn hierarchical(
    g: &Graph,
    cfg: &SubdueConfig,
    passes: usize,
) -> Result<Vec<HierarchyLevel>, SubdueError> {
    let mut current = g.clone();
    let mut levels = Vec::new();
    let base_marker = current
        .vertex_label_histogram()
        .keys()
        .map(|l| l.0)
        .max()
        .map_or(0, |m| m + 1);
    for pass in 0..passes {
        let out = discover(&current, cfg)?;
        let Some(best) = out.best.first().cloned() else {
            break;
        };
        if best.value <= 1.0 {
            break; // no longer compressing
        }
        let marker = VLabel(base_marker + pass as u32);
        let compressed = compress(&current, &best, marker);
        if compressed.size() >= current.size() {
            break;
        }
        levels.push(HierarchyLevel {
            substructure: best,
            marker,
            compressed_size: compressed.size(),
            output: out,
        });
        current = compressed;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalMethod;
    use crate::substructure::{expand, initial_substructures};
    use tnet_graph::generate::{plant_patterns, shapes};
    use tnet_graph::graph::ELabel;

    /// Two disjoint a->b edges plus a bridge b1->a2.
    fn bridge_graph() -> Graph {
        let mut g = Graph::new();
        let a1 = g.add_vertex(VLabel(0));
        let b1 = g.add_vertex(VLabel(0));
        let a2 = g.add_vertex(VLabel(0));
        let b2 = g.add_vertex(VLabel(0));
        g.add_edge(a1, b1, ELabel(0));
        g.add_edge(a2, b2, ELabel(0));
        g.add_edge(b1, a2, ELabel(5));
        g
    }

    #[test]
    fn compress_replaces_instances_and_reattaches() {
        let g = bridge_graph();
        // Substructure: the 1-edge label-0 pattern with its 2 instances.
        let init = initial_substructures(&g);
        let subs = expand(&g, &init[0]);
        let sub = subs
            .iter()
            .find(|s| s.pattern.edge_label(s.pattern.edges().next().unwrap()) == ELabel(0))
            .unwrap();
        assert_eq!(sub.disjoint_count(), 2);
        let compressed = compress(&g, sub, VLabel(99));
        // Two marker vertices joined by the bridge edge.
        assert_eq!(compressed.vertex_count(), 2);
        assert_eq!(compressed.edge_count(), 1);
        let e = compressed.edges().next().unwrap();
        assert_eq!(compressed.edge_label(e), ELabel(5));
        for v in compressed.vertices() {
            assert_eq!(compressed.vertex_label(v), VLabel(99));
        }
    }

    #[test]
    fn compress_keeps_untouched_parts() {
        let mut g = bridge_graph();
        let iso = g.add_vertex(VLabel(7)); // unrelated vertex
        let b2 = g.vertices().nth(3).unwrap();
        g.add_edge(b2, iso, ELabel(9));
        let init = initial_substructures(&g);
        let subs = expand(&g, &init[0]);
        let sub = subs
            .iter()
            .find(|s| {
                s.pattern.edge_label(s.pattern.edges().next().unwrap()) == ELabel(0)
                    && s.disjoint_count() == 2
            })
            .unwrap();
        let compressed = compress(&g, sub, VLabel(99));
        // 2 markers + label-7 vertex; bridge + external edge survive.
        assert_eq!(compressed.vertex_count(), 3);
        assert_eq!(compressed.edge_count(), 2);
        assert!(compressed
            .vertices()
            .any(|v| compressed.vertex_label(v) == VLabel(7)));
    }

    #[test]
    fn hierarchical_compresses_planted_structure() {
        let planted = plant_patterns(&[shapes::hub_and_spoke(3, 0, 1)], 6, 4, 2, 5);
        let cfg = SubdueConfig {
            eval: EvalMethod::Size,
            beam_width: 6,
            max_best: 3,
            max_size: 8,
            ..Default::default()
        };
        let levels = hierarchical(&planted.graph, &cfg, 3).unwrap();
        assert!(!levels.is_empty());
        assert!(levels[0].compressed_size < planted.graph.size());
        // Sizes shrink monotonically across levels.
        for w in levels.windows(2) {
            assert!(w[1].compressed_size < w[0].compressed_size);
        }
    }

    #[test]
    fn hierarchical_stops_on_incompressible() {
        // A single edge cannot compress (needs >= 2 instances).
        let g = shapes::chain(1, 0, 1);
        let levels = hierarchical(&g, &SubdueConfig::default(), 3).unwrap();
        assert!(levels.is_empty());
    }
}
