//! Inexact graph matching — SUBDUE's fuzzy substructure mode.
//!
//! The original system can count instances that match a substructure
//! *approximately*, up to a bounded transformation cost. The paper ran
//! with exact matching only ("We were also looking only for exact
//! matches"), which it lists among the reasons interesting variants went
//! unfound; this module supplies the capability so the choice can be
//! made per experiment.
//!
//! The cost model follows Bunke-style graph edit distance restricted to
//! the operations SUBDUE charges for:
//!
//! * substituting a vertex label — cost 1;
//! * inserting/deleting a vertex — cost 1;
//! * inserting/deleting an edge — cost 1;
//! * substituting an edge label — cost 1.
//!
//! [`edit_distance_bounded`] computes the minimal cost by
//! branch-and-bound over injective vertex mappings, giving up early once
//! `max_cost` is exceeded — patterns here are mining-sized (≤ ~12
//! vertices), where this is fast.

use crate::substructure::Substructure;
use tnet_graph::graph::{Graph, VertexId};

/// Minimal transformation cost between `a` and `b`, or `None` if it
/// exceeds `max_cost`.
///
/// Symmetric: `d(a, b) == d(b, a)`.
pub fn edit_distance_bounded(a: &Graph, b: &Graph, max_cost: usize) -> Option<usize> {
    // Map the smaller-vertex graph into the larger: unmatched vertices of
    // the larger cost 1 each (insertions), as do their incident edges.
    let (small, large) = if a.vertex_count() <= b.vertex_count() {
        (a, b)
    } else {
        (b, a)
    };
    let sv: Vec<VertexId> = small.vertices().collect();
    let lv: Vec<VertexId> = large.vertices().collect();
    // Quick lower bound: size differences are unavoidable cost.
    let v_gap = lv.len() - sv.len();
    let e_gap = large.edge_count().abs_diff(small.edge_count());
    if v_gap + e_gap > max_cost {
        return None;
    }

    let mut best: Option<usize> = None;
    let mut assignment: Vec<Option<VertexId>> = vec![None; sv.len()];
    let mut used = vec![false; lv.len()];
    search(
        small,
        large,
        &sv,
        &lv,
        0,
        0,
        max_cost,
        &mut assignment,
        &mut used,
        &mut best,
    );
    best
}

/// Edge multiset difference between the mapped subpattern and the large
/// graph, restricted to mapped vertices; plus label mismatch costs. Used
/// as the exact completion cost once all small vertices are mapped.
fn completion_cost(
    small: &Graph,
    large: &Graph,
    sv: &[VertexId],
    assignment: &[Option<VertexId>],
    used: &[bool],
    lv: &[VertexId],
) -> usize {
    let image = |v: VertexId| -> VertexId {
        let idx = sv.iter().position(|&x| x == v).unwrap();
        assignment[idx].unwrap()
    };
    let mut cost = 0usize;
    // Edges of `small`: matched if `large` has an edge between the images
    // with the same label; label-substituted if an edge exists with a
    // different label; otherwise a deletion.
    let mut large_edges: Vec<(VertexId, VertexId, u32, bool)> = large
        .edges()
        .map(|e| {
            let (s, d, l) = large.edge(e);
            (s, d, l.0, false)
        })
        .collect();
    for e in small.edges() {
        let (s, d, l) = small.edge(e);
        let (ts, td) = (image(s), image(d));
        // Prefer an exact label match, then any edge on the pair.
        let exact = large_edges
            .iter()
            .position(|&(ls, ld, ll, taken)| !taken && ls == ts && ld == td && ll == l.0);
        match exact {
            Some(i) => large_edges[i].3 = true,
            None => {
                let any = large_edges
                    .iter()
                    .position(|&(ls, ld, _, taken)| !taken && ls == ts && ld == td);
                match any {
                    Some(i) => {
                        large_edges[i].3 = true;
                        cost += 1; // edge label substitution
                    }
                    None => cost += 1, // edge deletion
                }
            }
        }
    }
    // Unmatched large vertices: insertions, plus their incident edges.
    for (i, &v) in lv.iter().enumerate() {
        if !used[i] {
            cost += 1;
            cost += large.incident_edges(v).count();
        }
    }
    // Remaining large edges between *matched* vertices are insertions.
    let matched: Vec<VertexId> = assignment.iter().flatten().copied().collect();
    for &(ls, ld, _, taken) in &large_edges {
        if !taken && matched.contains(&ls) && matched.contains(&ld) {
            cost += 1;
        }
    }
    cost
}

#[allow(clippy::too_many_arguments)]
fn search(
    small: &Graph,
    large: &Graph,
    sv: &[VertexId],
    lv: &[VertexId],
    depth: usize,
    cost_so_far: usize,
    max_cost: usize,
    assignment: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
    best: &mut Option<usize>,
) {
    let bound = best.map_or(max_cost, |b| b.saturating_sub(1).min(max_cost));
    if cost_so_far > bound {
        return;
    }
    if depth == sv.len() {
        let total = cost_so_far + completion_cost(small, large, sv, assignment, used, lv);
        if total <= max_cost && best.is_none_or(|b| total < b) {
            *best = Some(total);
        }
        return;
    }
    let v = sv[depth];
    for (i, &cand) in lv.iter().enumerate() {
        if used[i] {
            continue;
        }
        let label_cost = usize::from(small.vertex_label(v) != large.vertex_label(cand));
        assignment[depth] = Some(cand);
        used[i] = true;
        search(
            small,
            large,
            sv,
            lv,
            depth + 1,
            cost_so_far + label_cost,
            max_cost,
            assignment,
            used,
            best,
        );
        assignment[depth] = None;
        used[i] = false;
    }
}

/// True if `a` and `b` match within `threshold` edit operations.
pub fn fuzzy_match(a: &Graph, b: &Graph, threshold: usize) -> bool {
    edit_distance_bounded(a, b, threshold).is_some()
}

/// Groups substructures whose patterns lie within `threshold` edit
/// operations of an earlier representative, merging their instance lists.
/// SUBDUE's fuzzy mode in one step: run [`crate::expand`] exactly, then
/// coalesce near-identical candidate substructures before evaluation.
pub fn coalesce_fuzzy(subs: Vec<Substructure>, threshold: usize) -> Vec<Substructure> {
    let mut groups: Vec<Substructure> = Vec::new();
    for sub in subs {
        match groups
            .iter_mut()
            .find(|g| fuzzy_match(&g.pattern, &sub.pattern, threshold))
        {
            Some(g) => {
                g.instances.extend(sub.instances);
                // Keep the larger pattern as the representative.
                if sub.pattern.size() > g.pattern.size() {
                    g.pattern = sub.pattern;
                }
            }
            None => groups.push(sub),
        }
    }
    // Dedup instances that arrived from several members.
    for g in &mut groups {
        g.instances
            .sort_by(|a, b| a.edges.cmp(&b.edges).then(a.vertices.cmp(&b.vertices)));
        g.instances.dedup();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substructure::{expand, initial_substructures};
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, VLabel};

    #[test]
    fn identical_graphs_cost_zero() {
        let a = shapes::hub_and_spoke(3, 0, 1);
        let b = shapes::hub_and_spoke(3, 0, 1);
        assert_eq!(edit_distance_bounded(&a, &b, 5), Some(0));
        assert!(fuzzy_match(&a, &b, 0));
    }

    #[test]
    fn vertex_label_substitution_costs_one() {
        let a = shapes::chain(1, 0, 1);
        let mut b = shapes::chain(1, 0, 1);
        let v = b.vertices().next().unwrap();
        b.set_vertex_label(v, VLabel(9));
        assert_eq!(edit_distance_bounded(&a, &b, 5), Some(1));
        assert!(!fuzzy_match(&a, &b, 0));
        assert!(fuzzy_match(&a, &b, 1));
    }

    #[test]
    fn edge_label_substitution_costs_one() {
        let a = shapes::chain(2, 0, 1);
        let mut b = shapes::chain(1, 0, 1);
        // Rebuild with second edge labeled differently.
        let vs: Vec<_> = b.vertices().collect();
        let c = b.add_vertex(VLabel(0));
        b.add_edge(vs[1], c, ELabel(7));
        assert_eq!(edit_distance_bounded(&a, &b, 5), Some(1));
    }

    #[test]
    fn missing_spoke_costs_two() {
        // 3-spoke vs 4-spoke hub: one vertex insertion + one edge.
        let a = shapes::hub_and_spoke(3, 0, 1);
        let b = shapes::hub_and_spoke(4, 0, 1);
        assert_eq!(edit_distance_bounded(&a, &b, 5), Some(2));
        assert!(edit_distance_bounded(&a, &b, 1).is_none());
    }

    #[test]
    fn symmetric() {
        let a = shapes::hub_and_spoke(3, 0, 1);
        let b = shapes::chain(3, 0, 1);
        assert_eq!(
            edit_distance_bounded(&a, &b, 8),
            edit_distance_bounded(&b, &a, 8)
        );
    }

    #[test]
    fn bound_cuts_off() {
        let a = shapes::chain(1, 0, 1);
        let b = shapes::hub_and_spoke(6, 0, 1);
        // Size gap alone exceeds the bound.
        assert!(edit_distance_bounded(&a, &b, 2).is_none());
    }

    #[test]
    fn coalesce_merges_near_identical_candidates() {
        // Graph with two 3-spoke hubs and one 4-spoke hub: exact grouping
        // yields two substructure classes; fuzzy threshold 2 merges them.
        let mut g = Graph::new();
        for spokes in [3usize, 3, 4] {
            let hub = g.add_vertex(VLabel(0));
            for _ in 0..spokes {
                let s = g.add_vertex(VLabel(0));
                g.add_edge(hub, s, ELabel(1));
            }
        }
        // Grow substructures to full hubs via repeated exact expansion.
        let mut subs = initial_substructures(&g);
        for _ in 0..4 {
            let mut next = Vec::new();
            for s in &subs {
                next.extend(expand(&g, s));
            }
            if next.is_empty() {
                break;
            }
            subs = next;
        }
        // `subs` now holds 4-edge-expansion survivors: the 4-spoke hub
        // class; rerun at 3 levels for the 3-spoke classes.
        let mut three = initial_substructures(&g);
        for _ in 0..3 {
            let mut next = Vec::new();
            for s in &three {
                next.extend(expand(&g, s));
            }
            three = next;
        }
        let mut all = subs;
        all.extend(three);
        let exact_classes = all.len();
        let fuzzy = coalesce_fuzzy(all, 2);
        assert!(
            fuzzy.len() < exact_classes,
            "fuzzy grouping should merge near-identical hubs: {} -> {}",
            exact_classes,
            fuzzy.len()
        );
        // Merged group holds instances from several hubs.
        assert!(fuzzy.iter().any(|s| s.instances.len() >= 2));
    }
}
