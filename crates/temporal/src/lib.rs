//! # tnet-temporal
//!
//! The temporal mining layer: drives a persistent [`MineSession`] across
//! tumbling or sliding windows of hour/day/week units (ROADMAP item 3),
//! and detects *flow patterns* — binned weight moving along short paths
//! across consecutive windows, after Kosyfaki et al.'s spatio-temporal
//! flow model — together with hub surges, deadhead cycles, and
//! air-freight outliers.
//!
//! The driver materializes all units once ([`tnet_partition::unit_partition`]),
//! freezes them into a single CSR [`TxnSet`], and mines each window as a
//! contiguous slice. With `incremental` set, consecutive overlapping
//! windows are served by delta re-counting; results are byte-identical
//! to full per-window mining at any thread count (the session's core
//! invariant).
//!
//! ```
//! use tnet_data::{binning::BinScheme, generate, SynthConfig};
//! use tnet_fsg::{FsgConfig, Support};
//! use tnet_partition::{Granularity, TemporalOptions, WindowSpec};
//! use tnet_temporal::{run_windows, TemporalConfig};
//!
//! let ds = generate(&SynthConfig::scaled(0.01));
//! let fsg = FsgConfig::default()
//!     .with_support(Support::Count(5))
//!     .with_max_edges(2);
//! let cfg = TemporalConfig::new(WindowSpec::tumbling(Granularity::Week, 1).unwrap())
//!     .with_fsg(fsg);
//! let run = run_windows(
//!     &ds.transactions,
//!     &BinScheme::paper_defaults(),
//!     &TemporalOptions::default(),
//!     &cfg,
//!     &tnet_exec::Exec::sequential(),
//! )
//! .unwrap();
//! assert!(!run.windows.is_empty());
//! ```

pub mod flow;

pub use flow::{
    attribute, detect_flows, CycleEvent, FlowAttribution, FlowConfig, FlowPath, FlowReport,
    HubSurge,
};

use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_exec::Exec;
use tnet_fsg::{FsgConfig, FsgError, FsgOutput, MineSession, SessionStats};
use tnet_graph::frozen::TxnSet;
use tnet_partition::{unit_partition, Granularity, TemporalError, TemporalOptions, WindowSpec};

/// Errors from the window driver: partitioning (bad dates, degenerate
/// window specs) or mining (memory budget exhaustion).
#[derive(Debug)]
pub enum TemporalRunError {
    Partition(TemporalError),
    Mine(FsgError),
}

impl std::fmt::Display for TemporalRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalRunError::Partition(e) => write!(f, "{e}"),
            TemporalRunError::Mine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TemporalRunError {}

impl From<TemporalError> for TemporalRunError {
    fn from(e: TemporalError) -> Self {
        TemporalRunError::Partition(e)
    }
}

impl From<FsgError> for TemporalRunError {
    fn from(e: FsgError) -> Self {
        TemporalRunError::Mine(e)
    }
}

/// Window-driver configuration.
#[derive(Clone, Debug)]
pub struct TemporalConfig {
    /// Granularity, width, and slide of the windows.
    pub spec: WindowSpec,
    /// Serve overlapping windows by delta re-counting instead of full
    /// per-window mining. Results are identical either way.
    pub incremental: bool,
    /// Churn fraction above which an incremental session falls back to
    /// a full re-count (see [`MineSession::with_churn_threshold`]).
    pub churn_threshold: f64,
    /// The per-window miner configuration.
    pub fsg: FsgConfig,
}

impl TemporalConfig {
    /// Incremental mining with default FSG settings and churn threshold.
    pub fn new(spec: WindowSpec) -> TemporalConfig {
        TemporalConfig {
            spec,
            incremental: true,
            churn_threshold: 0.5,
            fsg: FsgConfig::default(),
        }
    }

    pub fn with_fsg(mut self, fsg: FsgConfig) -> TemporalConfig {
        self.fsg = fsg;
        self
    }

    pub fn with_incremental(mut self, on: bool) -> TemporalConfig {
        self.incremental = on;
        self
    }
}

/// One mined window.
#[derive(Debug)]
pub struct WindowResult {
    /// Unit range `[unit_lo, unit_hi)` relative to the partition's
    /// `first_unit`.
    pub unit_lo: usize,
    pub unit_hi: usize,
    /// Backing transaction range in the frozen universe.
    pub txn_lo: usize,
    pub txn_hi: usize,
    /// Full miner output for this window (window-local TIDs).
    pub output: FsgOutput,
}

/// Everything a windowed run produced.
#[derive(Debug)]
pub struct TemporalRun {
    pub granularity: Granularity,
    /// Absolute unit index of unit 0 (days/hours/weeks since epoch).
    pub first_unit: u64,
    /// Units covered (including empty ones).
    pub units: usize,
    /// Graph transactions across all units.
    pub total_txns: usize,
    pub windows: Vec<WindowResult>,
    /// Session counters: windows, incremental vs full, delta volumes,
    /// re-count work (`session.*` / `window.*` metrics).
    pub session: SessionStats,
}

impl TemporalRun {
    /// Folds the run's counters into a metrics registry.
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        self.session.record_into(metrics);
        metrics.add("window.units", self.units as u64);
        metrics.add("window.txns", self.total_txns as u64);
    }
}

/// Partitions `txns` into units, freezes them once, and mines every
/// window of `cfg.spec` through one [`MineSession`]. With
/// `cfg.incremental` unset the churn threshold is forced negative so
/// every window takes the full re-count path — output is identical
/// either way; only the wall clock and session counters differ.
///
/// # Errors
/// [`TemporalRunError::Partition`] on invalid dates or window specs,
/// [`TemporalRunError::Mine`] if a window's mining exceeds the memory
/// budget.
pub fn run_windows(
    txns: &[Transaction],
    scheme: &BinScheme,
    opts: &TemporalOptions,
    cfg: &TemporalConfig,
    exec: &Exec,
) -> Result<TemporalRun, TemporalRunError> {
    let up = unit_partition(txns, scheme, cfg.spec.granularity, opts)?;
    let set = TxnSet::freeze(&up.graphs);
    let threshold = if cfg.incremental {
        cfg.churn_threshold
    } else {
        -1.0
    };
    let mut session = MineSession::new(&set, cfg.fsg.clone()).with_churn_threshold(threshold);
    let mut windows = Vec::new();
    for (ulo, uhi) in cfg.spec.windows(up.units()) {
        let (lo, hi) = up.txn_range(ulo, uhi);
        let output = session.advance(lo, hi, exec)?;
        windows.push(WindowResult {
            unit_lo: ulo,
            unit_hi: uhi,
            txn_lo: lo,
            txn_hi: hi,
            output,
        });
    }
    Ok(TemporalRun {
        granularity: cfg.spec.granularity,
        first_unit: up.first_unit,
        units: up.units(),
        total_txns: up.graphs.len(),
        windows,
        session: session.stats.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::{generate, SynthConfig};
    use tnet_fsg::{mine_with, Support};

    fn small_dataset() -> Vec<Transaction> {
        generate(&SynthConfig::scaled(0.01)).transactions
    }

    fn fsg_cfg() -> FsgConfig {
        FsgConfig::default()
            .with_support(Support::Count(3))
            .with_max_edges(3)
    }

    #[test]
    fn sliding_day_run_is_incremental_and_exact() {
        let txns = small_dataset();
        let scheme = BinScheme::paper_defaults();
        let opts = TemporalOptions::default();
        let exec = Exec::sequential();
        let spec = WindowSpec::new(Granularity::Day, 7, 1).unwrap();
        let cfg = TemporalConfig::new(spec).with_fsg(fsg_cfg());
        let run = run_windows(&txns, &scheme, &opts, &cfg, &exec).unwrap();
        assert!(
            run.session.incremental_windows > 0,
            "sliding windows should hit the delta path"
        );
        // Ground truth: independent full mining of each window's graphs.
        let up = unit_partition(&txns, &scheme, Granularity::Day, &opts).unwrap();
        for w in &run.windows {
            let graphs = up.window_graphs(w.unit_lo, w.unit_hi);
            let full = mine_with(graphs, &fsg_cfg(), &exec).unwrap();
            assert_eq!(w.output.patterns.len(), full.patterns.len());
            for (a, b) in w.output.patterns.iter().zip(&full.patterns) {
                assert_eq!(a.support, b.support);
                assert_eq!(a.tids, b.tids);
            }
        }
    }

    #[test]
    fn non_incremental_mode_forces_full_recounts() {
        let txns = small_dataset();
        let spec = WindowSpec::new(Granularity::Week, 2, 1).unwrap();
        let cfg = TemporalConfig::new(spec)
            .with_fsg(fsg_cfg())
            .with_incremental(false);
        let run = run_windows(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
            &cfg,
            &Exec::sequential(),
        )
        .unwrap();
        assert_eq!(run.session.incremental_windows, 0);
        assert_eq!(run.session.full_recounts, run.windows.len());
    }

    #[test]
    fn inverted_dates_surface_as_partition_error() {
        let mut txns = small_dataset();
        txns[0].req_pickup = tnet_data::Date(40);
        txns[0].req_delivery = tnet_data::Date(2);
        let cfg = TemporalConfig::new(WindowSpec::tumbling(Granularity::Day, 7).unwrap());
        let err = run_windows(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
            &cfg,
            &Exec::sequential(),
        )
        .unwrap_err();
        assert!(matches!(err, TemporalRunError::Partition(_)));
    }
}
