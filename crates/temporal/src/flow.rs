//! Flow-pattern detection across consecutive windows.
//!
//! After Kosyfaki et al. ("Flow Motifs in Interaction Networks" /
//! spatio-temporal flow patterns): a *flow* is weight moving along a
//! short path whose hops occur in consecutive time windows — freight
//! arriving at a terminal in window `w` and leaving it in window
//! `w + 1`. On top of the path flows, the detector reports the three
//! structure families the synthetic generator plants:
//!
//! * **hub surges** — an origin whose windowed out-weight spikes far
//!   above its own cross-window baseline (weekly-periodic planted hub
//!   lanes surface at day granularity and vanish at week granularity);
//! * **deadhead cycles** — 2- and 3-cycles whose legs complete within a
//!   bounded run of consecutive windows (circular repositioning
//!   routes);
//! * **air-freight outliers** — the §7 anomaly rule: very long
//!   distance covered in under a day.

use std::collections::{HashMap, HashSet};
use tnet_data::model::{LatLon, Transaction};
use tnet_data::Dataset;
use tnet_partition::WindowSpec;

/// Detector thresholds. The defaults are tuned for the synthetic
/// dataset family at any scale.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Heaviest OD edges kept per window when joining path flows.
    pub top_edges_per_window: usize,
    /// Minimum flow value (pounds) for a path flow to be reported.
    pub min_flow_weight: f64,
    /// Reported path flows are the top this-many by value.
    pub max_flows: usize,
    /// A window's out-weight must exceed `surge_factor x` the origin's
    /// per-window baseline to count as a surge.
    pub surge_factor: f64,
    /// Cycle legs must complete within this many consecutive windows.
    pub cycle_window_span: usize,
    /// Longest cycle reported (the generator plants 3- to 5-cycles).
    pub max_cycle_len: usize,
    /// Nodes with more in-range out-neighbors than this are never used
    /// as cycle hops — keeps the mega-hub from exploding the search.
    pub cycle_max_degree: usize,
    /// Air-freight outlier rule: distance above this ...
    pub outlier_distance: f64,
    /// ... covered in under this many transit hours.
    pub outlier_hours: f64,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            top_edges_per_window: 64,
            min_flow_weight: 1.0,
            max_flows: 50,
            surge_factor: 3.0,
            cycle_window_span: 3,
            max_cycle_len: 5,
            cycle_max_degree: 24,
            outlier_distance: 3_000.0,
            outlier_hours: 24.0,
        }
    }
}

/// Weight moving along a 2- or 3-hop path across consecutive windows.
/// `value` is the bottleneck (minimum hop) weight.
#[derive(Clone, Debug)]
pub struct FlowPath {
    /// `path.len() - 1` hops; hop `i` occurs in window `window_lo + i`.
    pub path: Vec<LatLon>,
    pub window_lo: usize,
    pub value: f64,
}

/// An origin whose out-weight in one window spikes above its own
/// cross-window baseline.
#[derive(Clone, Debug)]
pub struct HubSurge {
    pub hub: LatLon,
    pub window: usize,
    pub out_weight: f64,
    /// Mean per-window out-weight of this origin over the whole run.
    pub baseline: f64,
}

/// A 2- or 3-cycle whose legs complete within a bounded window span.
#[derive(Clone, Debug)]
pub struct CycleEvent {
    pub locs: Vec<LatLon>,
    /// The window each leg occurred in (non-decreasing).
    pub windows: Vec<usize>,
}

/// Everything [`detect_flows`] found.
#[derive(Debug, Default)]
pub struct FlowReport {
    /// Number of windows examined.
    pub windows: usize,
    pub flows: Vec<FlowPath>,
    pub surges: Vec<HubSurge>,
    pub cycles: Vec<CycleEvent>,
    /// Transaction ids matching the air-freight outlier rule.
    pub outliers: Vec<u64>,
}

/// How many of the generator's planted structures the detector
/// surfaced — the per-granularity recovery scorecard.
#[derive(Clone, Copy, Debug)]
pub struct FlowAttribution {
    /// Distinct planted hub origins / how many of them surged.
    pub hubs_planted: usize,
    pub hubs_surfaced: usize,
    /// Planted circular routes / how many appear as cycle events.
    pub cycles_planted: usize,
    pub cycles_surfaced: usize,
    /// Transactions matching the outlier rule / how many were reported.
    pub outliers_planted: usize,
    pub outliers_found: usize,
}

/// Runs the detector over `txns` windowed by `spec`. Each transaction
/// is charged to the window(s) containing its **starting** unit (its
/// pickup at the spec's granularity), so no weight is double-counted
/// within one window sequence.
pub fn detect_flows(txns: &[Transaction], spec: &WindowSpec, cfg: &FlowConfig) -> FlowReport {
    let mut report = FlowReport::default();
    if txns.is_empty() {
        return report;
    }
    let units_of: Vec<u64> = txns
        .iter()
        .map(|t| spec.granularity.active_units(t).0)
        .collect();
    let first = *units_of.iter().min().unwrap();
    let last = *units_of.iter().max().unwrap();
    let units = (last - first + 1) as usize;
    let windows = spec.windows(units);
    report.windows = windows.len();

    // Per-window OD weight aggregation.
    let mut od: Vec<HashMap<(LatLon, LatLon), f64>> = vec![HashMap::new(); windows.len()];
    for (t, &u) in txns.iter().zip(&units_of) {
        let unit = (u - first) as usize;
        for (w, &(lo, hi)) in windows.iter().enumerate() {
            if unit >= lo && unit < hi {
                *od[w].entry((t.origin, t.dest)).or_insert(0.0) += t.gross_weight;
            }
        }
    }

    report.flows = path_flows(&od, cfg);
    report.surges = hub_surges(&od, cfg);
    report.cycles = deadhead_cycles(&od, cfg);
    report.outliers = txns
        .iter()
        .filter(|t| t.total_distance > cfg.outlier_distance && t.transit_hours < cfg.outlier_hours)
        .map(|t| t.id)
        .collect();
    report
}

/// Scores `report` against the generator's planted structures.
pub fn attribute(report: &FlowReport, ds: &Dataset, cfg: &FlowConfig) -> FlowAttribution {
    let hub_origins: HashSet<LatLon> = ds.planted_hub_pairs.iter().map(|&(o, _)| o).collect();
    let surged: HashSet<LatLon> = report.surges.iter().map(|s| s.hub).collect();
    let cycle_sets: Vec<HashSet<LatLon>> = report
        .cycles
        .iter()
        .map(|c| c.locs.iter().copied().collect())
        .collect();
    let cycles_surfaced = ds
        .planted_cycles
        .iter()
        .filter(|planted| {
            let pset: HashSet<LatLon> = planted.iter().copied().collect();
            // A detected cycle event covering a subset of the planted
            // route's stops counts: the route's 2-leg backhauls are its
            // observable signature at short window spans.
            cycle_sets.iter().any(|c| c.is_subset(&pset))
        })
        .count();
    let outliers_planted = ds
        .transactions
        .iter()
        .filter(|t| t.total_distance > cfg.outlier_distance && t.transit_hours < cfg.outlier_hours)
        .count();
    FlowAttribution {
        hubs_planted: hub_origins.len(),
        hubs_surfaced: hub_origins.intersection(&surged).count(),
        cycles_planted: ds.planted_cycles.len(),
        cycles_surfaced,
        outliers_planted,
        outliers_found: report.outliers.len(),
    }
}

/// The heaviest `cfg.top_edges_per_window` edges of one window, weight
/// descending (deterministic: ties break on insertion-independent
/// coordinate order).
fn top_edges(od: &HashMap<(LatLon, LatLon), f64>, cap: usize) -> Vec<(LatLon, LatLon, f64)> {
    let mut edges: Vec<(LatLon, LatLon, f64)> = od.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
    edges.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .unwrap()
            .then_with(|| key(x.0, x.1).cmp(&key(y.0, y.1)))
    });
    edges.truncate(cap);
    edges
}

/// Stable ordering key for an OD pair (fixed-point coordinates).
fn key(a: LatLon, b: LatLon) -> (u64, u64) {
    (loc_key(a), loc_key(b))
}

fn loc_key(l: LatLon) -> u64 {
    // LatLon hashes by its fixed-point representation; reuse the same
    // bits for a total order.
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    l.hash(&mut h);
    h.finish()
}

fn path_flows(od: &[HashMap<(LatLon, LatLon), f64>], cfg: &FlowConfig) -> Vec<FlowPath> {
    let tops: Vec<Vec<(LatLon, LatLon, f64)>> = od
        .iter()
        .map(|m| top_edges(m, cfg.top_edges_per_window))
        .collect();
    // Index each window's top edges by source for the path join.
    let by_src: Vec<HashMap<LatLon, Vec<(LatLon, f64)>>> = tops
        .iter()
        .map(|edges| {
            let mut m: HashMap<LatLon, Vec<(LatLon, f64)>> = HashMap::new();
            for &(a, b, w) in edges {
                m.entry(a).or_default().push((b, w));
            }
            m
        })
        .collect();
    let mut flows = Vec::new();
    for w in 0..od.len().saturating_sub(1) {
        for &(a, b, w1) in &tops[w] {
            let Some(nexts) = by_src[w + 1].get(&b) else {
                continue;
            };
            for &(c, w2) in nexts {
                if c == a {
                    continue; // ping-pong: that's a deadhead cycle, not a flow
                }
                let v2 = w1.min(w2);
                if v2 >= cfg.min_flow_weight {
                    flows.push(FlowPath {
                        path: vec![a, b, c],
                        window_lo: w,
                        value: v2,
                    });
                }
                // Third hop in the window after next.
                let Some(thirds) = od.get(w + 2).and_then(|_| by_src.get(w + 2)) else {
                    continue;
                };
                if let Some(ds) = thirds.get(&c) {
                    for &(d, w3) in ds {
                        if d == b {
                            continue;
                        }
                        let v3 = v2.min(w3);
                        if v3 >= cfg.min_flow_weight {
                            flows.push(FlowPath {
                                path: vec![a, b, c, d],
                                window_lo: w,
                                value: v3,
                            });
                        }
                    }
                }
            }
        }
    }
    flows.sort_by(|x, y| {
        y.value
            .partial_cmp(&x.value)
            .unwrap()
            .then_with(|| x.window_lo.cmp(&y.window_lo))
            .then_with(|| x.path.len().cmp(&y.path.len()))
    });
    flows.truncate(cfg.max_flows);
    flows
}

fn hub_surges(od: &[HashMap<(LatLon, LatLon), f64>], cfg: &FlowConfig) -> Vec<HubSurge> {
    if od.len() < 2 {
        return Vec::new();
    }
    // Per-origin out-weight per window.
    let mut out: HashMap<LatLon, Vec<f64>> = HashMap::new();
    for (w, m) in od.iter().enumerate() {
        for (&(a, _), &wt) in m {
            out.entry(a).or_insert_with(|| vec![0.0; od.len()])[w] += wt;
        }
    }
    let mut surges = Vec::new();
    for (hub, per_window) in &out {
        let baseline = per_window.iter().sum::<f64>() / per_window.len() as f64;
        if baseline <= 0.0 {
            continue;
        }
        for (w, &wt) in per_window.iter().enumerate() {
            if wt > cfg.surge_factor * baseline {
                surges.push(HubSurge {
                    hub: *hub,
                    window: w,
                    out_weight: wt,
                    baseline,
                });
            }
        }
    }
    surges.sort_by(|x, y| {
        (y.out_weight / y.baseline)
            .partial_cmp(&(x.out_weight / x.baseline))
            .unwrap()
            .then_with(|| x.window.cmp(&y.window))
            .then_with(|| loc_key(x.hub).cmp(&loc_key(y.hub)))
    });
    surges
}

/// Directed simple cycles of length 2..=`max_cycle_len` whose legs are
/// all active within some run of `cycle_window_span` consecutive
/// windows (a repositioning loop completed within the span). Search is
/// a bounded DFS per span range: rotations are deduped by forcing the
/// minimal-key node first, hub nodes above `cycle_max_degree` in-range
/// out-neighbors are never hops, and each range has a step budget.
fn deadhead_cycles(od: &[HashMap<(LatLon, LatLon), f64>], cfg: &FlowConfig) -> Vec<CycleEvent> {
    let span = cfg.cycle_window_span.max(1);
    let mut cycles: Vec<CycleEvent> = Vec::new();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    for w1 in 0..od.len() {
        let hi = (w1 + span).min(od.len());
        // Earliest active window in the range per OD pair.
        let mut first_win: HashMap<(LatLon, LatLon), usize> = HashMap::new();
        for w in (w1..hi).rev() {
            for &e in od[w].keys() {
                first_win.insert(e, w);
            }
        }
        let mut adj: HashMap<LatLon, Vec<LatLon>> = HashMap::new();
        for &(a, b) in first_win.keys() {
            if a != b {
                adj.entry(a).or_default().push(b);
            }
        }
        adj.retain(|_, ns| {
            ns.sort_by_key(|&n| loc_key(n));
            ns.len() <= cfg.cycle_max_degree
        });
        let mut starts: Vec<LatLon> = adj.keys().copied().collect();
        starts.sort_by_key(|&s| loc_key(s));
        let mut budget = 100_000usize;
        for &start in &starts {
            let skey = loc_key(start);
            // path holds the vertices visited so far, starting at `start`.
            let mut path = vec![start];
            let mut stack = vec![adj[&start].clone().into_iter()];
            while let Some(iter) = stack.last_mut() {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                let Some(next) = iter.next() else {
                    stack.pop();
                    path.pop();
                    continue;
                };
                if next == start {
                    if path.len() >= 2 {
                        let sig: Vec<u64> = path.iter().map(|&v| loc_key(v)).collect();
                        if seen.insert(sig) {
                            let windows: Vec<usize> = path
                                .iter()
                                .zip(path.iter().cycle().skip(1))
                                .map(|(&u, &v)| first_win[&(u, v)])
                                .collect();
                            cycles.push(CycleEvent {
                                locs: path.clone(),
                                windows,
                            });
                        }
                    }
                    continue;
                }
                // Canonical rotation: every other node outranks `start`.
                if loc_key(next) <= skey || path.contains(&next) {
                    continue;
                }
                if path.len() + 1 < cfg.max_cycle_len.max(2) {
                    if let Some(ns) = adj.get(&next) {
                        path.push(next);
                        stack.push(ns.clone().into_iter());
                    }
                } else if path.len() + 1 == cfg.max_cycle_len.max(2)
                    && adj.get(&next).is_some_and(|ns| ns.contains(&start))
                {
                    // Final hop: only closing back to the start matters.
                    path.push(next);
                    stack.push(vec![start].into_iter());
                }
            }
        }
    }
    cycles.sort_by(|x, y| {
        x.windows[0]
            .cmp(&y.windows[0])
            .then_with(|| x.locs.len().cmp(&y.locs.len()))
            .then_with(|| loc_key(x.locs[0]).cmp(&loc_key(y.locs[0])))
    });
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, TransMode};
    use tnet_data::{generate, SynthConfig};
    use tnet_partition::Granularity;

    fn txn(id: u64, o: (f64, f64), d: (f64, f64), day: u32, weight: f64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(day),
            req_delivery: Date(day + 1),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 500.0,
            gross_weight: weight,
            transit_hours: 20.0,
            mode: TransMode::Truckload,
        }
    }

    const A: (f64, f64) = (44.5, -88.0);
    const B: (f64, f64) = (41.9, -87.6);
    const C: (f64, f64) = (39.1, -84.5);

    fn day_spec(width: usize, slide: usize) -> WindowSpec {
        WindowSpec::new(Granularity::Day, width, slide).unwrap()
    }

    #[test]
    fn two_hop_flow_across_consecutive_windows() {
        // A->B on day 0, B->C on day 1: a 2-hop flow for width-1 windows.
        let txns = vec![txn(1, A, B, 0, 40_000.0), txn(2, B, C, 1, 30_000.0)];
        let report = detect_flows(&txns, &day_spec(1, 1), &FlowConfig::default());
        assert_eq!(report.windows, 2);
        let f = report
            .flows
            .iter()
            .find(|f| f.path.len() == 3)
            .expect("2-hop flow");
        assert_eq!(f.window_lo, 0);
        assert!((f.value - 30_000.0).abs() < 1e-9);
    }

    #[test]
    fn deadhead_two_cycle_detected() {
        let txns = vec![txn(1, A, B, 0, 40_000.0), txn(2, B, A, 1, 1_000.0)];
        let report = detect_flows(&txns, &day_spec(1, 1), &FlowConfig::default());
        assert_eq!(report.cycles.len(), 1);
        assert_eq!(report.cycles[0].locs.len(), 2);
    }

    #[test]
    fn hub_surge_needs_a_spike() {
        // A ships every day at 10k, then 100k on day 4.
        let mut txns: Vec<Transaction> = (0..4).map(|d| txn(d as u64, A, B, d, 10_000.0)).collect();
        txns.push(txn(9, A, C, 4, 100_000.0));
        let report = detect_flows(&txns, &day_spec(1, 1), &FlowConfig::default());
        assert_eq!(report.surges.len(), 1);
        assert_eq!(report.surges[0].window, 4);
    }

    #[test]
    fn outlier_rule_matches_air_freight() {
        let mut t = txn(7, A, C, 0, 2_000.0);
        t.total_distance = 4_200.0;
        t.transit_hours = 9.0;
        let report = detect_flows(&[t], &day_spec(1, 1), &FlowConfig::default());
        assert_eq!(report.outliers, vec![7]);
    }

    #[test]
    fn synthetic_attribution_matches_granularity_to_structure() {
        let ds = generate(&SynthConfig::scaled(0.02));
        let cfg = FlowConfig::default();
        // Day granularity: weekly-periodic hub lanes concentrate one
        // day a week, spiking far above their per-day baseline.
        let day = detect_flows(&ds.transactions, &day_spec(1, 1), &cfg);
        let day_attr = attribute(&day, &ds, &cfg);
        assert!(day_attr.hubs_planted > 0 && day_attr.cycles_planted > 0);
        assert!(
            day_attr.hubs_surfaced > 0,
            "weekly-periodic hub lanes must surge at day granularity \
             ({}/{} surfaced)",
            day_attr.hubs_surfaced,
            day_attr.hubs_planted
        );
        // Week granularity: every leg of a circular route ships within
        // one week (random weekly phases), so the loop closes inside a
        // single window.
        let week_spec = WindowSpec::new(Granularity::Week, 1, 1).unwrap();
        let week = detect_flows(&ds.transactions, &week_spec, &cfg);
        let week_attr = attribute(&week, &ds, &cfg);
        assert!(
            week_attr.cycles_surfaced > 0,
            "planted circular routes must close as deadhead cycles at \
             week granularity ({}/{} surfaced)",
            week_attr.cycles_surfaced,
            week_attr.cycles_planted
        );
        assert_eq!(day_attr.outliers_found, day_attr.outliers_planted);
        assert_eq!(
            day_attr.outliers_found, 3,
            "three planted air-freight outliers"
        );
    }
}
