//! The worker pool: scoped threads over a chunked atomic-cursor queue.

use crate::cancel::{CancelToken, Cancelled};
use crate::counters::{CountersSnapshot, PoolCounters};
use crate::threads::Threads;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnet_obs::{MetricsRegistry, Span};

/// Upper bound on chunks per region. Chunking depends only on input
/// length — never on thread count — which is the invariant that makes
/// chunk-level reductions (e.g. EM's log-likelihood) identical across
/// any thread count, including 1.
const MAX_CHUNKS: usize = 256;

/// Half-open chunk bounds for `len` items: `min(len, MAX_CHUNKS)`
/// near-equal slices in input order.
fn chunk_bounds(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let n = len.min(MAX_CHUNKS);
    (0..n).map(|i| (i * len / n, (i + 1) * len / n)).collect()
}

/// Transactions per chunk for the miners' per-transaction support maps:
/// sized so one chunk's frozen-CSR working set stays L2-resident (the
/// bench split transactions run single-digit KiB each; 32 of them sit
/// comfortably inside a 256 KiB L2, and halving/doubling the size
/// measured within noise on `bench_miners` while 256-item chunks lost
/// ~5% to cold misses). Callers opt in via [`Exec::with_chunk_items`];
/// the chosen size is recorded under the `exec.chunk_items` metric, so
/// trace output shows what the run actually used.
pub const L2_TXN_CHUNK_ITEMS: usize = 32;

/// A handle on the execution runtime: thread budget + cancellation token
/// + shared counters.
///
/// `Exec` is cheap to clone-like via [`Exec::child`] /
/// [`Exec::child_with_threads`]; children share the pool counters and
/// observe the parent's cancellation while owning their own token.
///
/// Workers are spawned per parallel region with `std::thread::scope` —
/// the calling thread participates as a worker, so `threads = n` means
/// `n` total workers, and a region on a 1-thread pool spawns nothing.
/// At mining granularity (a chunk is many VF2 calls or many EM rows)
/// spawn cost is noise; in exchange, borrows into caller stack frames
/// are safe and worker panics propagate to the caller.
pub struct Exec {
    threads: usize,
    cancel: CancelToken,
    counters: Arc<PoolCounters>,
    /// Current tracing span; disabled unless attached via
    /// [`Exec::with_obs`]/[`Exec::with_span`]. Children inherit it, so a
    /// miner handed a child handle times its phases under the caller's
    /// node.
    span: Span,
    /// Shared named-counter registry (see [`tnet_obs::MetricsRegistry`]);
    /// miners fold their run stats into it on completion.
    metrics: MetricsRegistry,
    /// Items per chunk for [`Exec::par_map`]/[`Exec::try_par_map`]
    /// (0 = automatic [`chunk_bounds`] sizing). Still a pure function of
    /// input length, so results stay identical at any thread count.
    /// [`Exec::par_chunks`] deliberately ignores it: chunk-level
    /// reductions (e.g. EM's log-likelihood sums) pin their boundaries.
    chunk_items: usize,
}

impl std::fmt::Debug for Exec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exec")
            .field("threads", &self.threads)
            .field("cancel", &self.cancel)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Exec {
    /// A pool with an explicit worker count (clamped to >= 1).
    pub fn new(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
            cancel: CancelToken::new(),
            counters: Arc::new(PoolCounters::default()),
            span: Span::disabled(),
            metrics: MetricsRegistry::new(),
            chunk_items: 0,
        }
    }

    /// The single-threaded pool: identical semantics (and identical
    /// output) to any multi-threaded pool, with zero spawns.
    pub fn sequential() -> Self {
        Exec::new(1)
    }

    /// A pool sized by the [`Threads`] resolution chain
    /// (explicit / `TNET_THREADS` / hardware).
    pub fn from_threads(cfg: Threads) -> Self {
        Exec::new(cfg.resolve())
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A child handle: same thread budget, shared counters, child
    /// cancellation token (see [`CancelToken::child`]).
    pub fn child(&self) -> Exec {
        self.child_with_threads(self.threads)
    }

    /// A child handle with its own thread budget — used to split a
    /// budget across nested regions (e.g. one thread per repetition
    /// inside an already-parallel sweep).
    pub fn child_with_threads(&self, threads: usize) -> Exec {
        Exec {
            threads: threads.max(1),
            cancel: self.cancel.child(),
            counters: Arc::clone(&self.counters),
            span: self.span.clone(),
            metrics: self.metrics.clone(),
            chunk_items: self.chunk_items,
        }
    }

    /// A child handle whose token expires `timeout` from now (see
    /// [`CancelToken::child_with_deadline`]): its cancellable regions
    /// return `Err(Cancelled)` once the deadline passes, while the
    /// parent and siblings keep running.
    pub fn child_with_deadline(&self, threads: usize, timeout: Duration) -> Exec {
        Exec {
            threads: threads.max(1),
            cancel: self.cancel.child_with_deadline(timeout),
            counters: Arc::clone(&self.counters),
            span: self.span.clone(),
            metrics: self.metrics.clone(),
            chunk_items: self.chunk_items,
        }
    }

    /// This handle, attached to an observability context: subsequent
    /// phase timers land under `span` and run stats fold into `metrics`.
    /// Same token, thread budget, and pool counters as `self`.
    pub fn with_obs(&self, span: Span, metrics: MetricsRegistry) -> Exec {
        Exec {
            threads: self.threads,
            cancel: self.cancel.clone(),
            counters: Arc::clone(&self.counters),
            span,
            metrics,
            chunk_items: self.chunk_items,
        }
    }

    /// This handle with its current span swapped — used by the
    /// supervisor to scope a section's work under the section's node.
    /// Same token, thread budget, pool counters, and metrics.
    pub fn with_span(&self, span: Span) -> Exec {
        Exec {
            threads: self.threads,
            cancel: self.cancel.clone(),
            counters: Arc::clone(&self.counters),
            span,
            metrics: self.metrics.clone(),
            chunk_items: self.chunk_items,
        }
    }

    /// This handle with a fixed items-per-chunk for
    /// [`Exec::par_map`]/[`Exec::try_par_map`] (`0` restores automatic
    /// sizing). Same token, thread budget, pool counters, span, and
    /// metrics. Chunking stays a pure function of input length, so
    /// results are unchanged at any thread count; only scheduling
    /// granularity (and cache residency per chunk) moves. The size in
    /// effect is recorded under the `exec.chunk_items` metric the first
    /// time a map region runs.
    pub fn with_chunk_items(&self, items: usize) -> Exec {
        Exec {
            threads: self.threads,
            cancel: self.cancel.clone(),
            counters: Arc::clone(&self.counters),
            span: self.span.clone(),
            metrics: self.metrics.clone(),
            chunk_items: items,
        }
    }

    /// Items per chunk for map regions (0 = automatic).
    pub fn chunk_items(&self) -> usize {
        self.chunk_items
    }

    /// Chunk bounds for a map region: fixed `chunk_items`-sized slices
    /// when a hint is set, [`chunk_bounds`] otherwise.
    fn map_bounds(&self, len: usize) -> Vec<(usize, usize)> {
        if self.chunk_items == 0 {
            return chunk_bounds(len);
        }
        if len == 0 {
            return Vec::new();
        }
        self.metrics
            .record_max("exec.chunk_items", self.chunk_items as u64);
        let n = len.div_ceil(self.chunk_items);
        (0..n)
            .map(|i| (i * self.chunk_items, ((i + 1) * self.chunk_items).min(len)))
            .collect()
    }

    /// The tracing span phases on this handle should time under.
    /// Disabled (no-op) unless an observability context was attached.
    pub fn span(&self) -> &Span {
        &self.span
    }

    /// The shared named-counter registry for run stats.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This handle's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Cancels this handle's token (and thereby all child handles).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// True once this handle or any ancestor handle was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Snapshot of the pool-wide counters (shared with all children).
    pub fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// Applies `f` to every item, returning results **in input order**.
    /// Ignores cancellation: every item is always processed.
    pub fn par_map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let bounds = self.map_bounds(items.len());
        let per_chunk = self
            .run_region(items.len(), bounds.len(), false, |ci| {
                let (lo, hi) = bounds[ci];
                items[lo..hi].iter().map(&f).collect::<Vec<R>>()
            })
            .expect("non-cancellable region cannot be cancelled");
        per_chunk.into_iter().flatten().collect()
    }

    /// As [`Exec::par_map`], but workers stop claiming chunks once this
    /// handle's token is cancelled, and the call returns
    /// `Err(Cancelled)` instead of a complete result.
    pub fn try_par_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Result<Vec<R>, Cancelled> {
        let bounds = self.map_bounds(items.len());
        let per_chunk = self.run_region(items.len(), bounds.len(), true, |ci| {
            let (lo, hi) = bounds[ci];
            items[lo..hi].iter().map(&f).collect::<Vec<R>>()
        })?;
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// Applies `f` to every item for its side effects (no result
    /// assembly). Ignores cancellation.
    pub fn par_for_each<T: Sync>(&self, items: &[T], f: impl Fn(&T) + Sync) {
        let bounds = chunk_bounds(items.len());
        self.run_region(items.len(), bounds.len(), false, |ci| {
            let (lo, hi) = bounds[ci];
            for item in &items[lo..hi] {
                f(item);
            }
        })
        .expect("non-cancellable region cannot be cancelled");
    }

    /// Applies `f` to each *chunk* (`f(chunk_index, slice)`), returning
    /// the per-chunk results in chunk order. Chunk boundaries depend only
    /// on `items.len()`, so chunk-level reductions are thread-count
    /// independent. Ignores cancellation.
    pub fn par_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        let bounds = chunk_bounds(items.len());
        self.run_region(items.len(), bounds.len(), false, |ci| {
            let (lo, hi) = bounds[ci];
            f(ci, &items[lo..hi])
        })
        .expect("non-cancellable region cannot be cancelled")
    }

    /// The region engine: `n_chunks` units of work claimed off an atomic
    /// cursor by `min(threads, n_chunks)` workers (the caller included),
    /// results reassembled in chunk order.
    fn run_region<R: Send>(
        &self,
        len: usize,
        n_chunks: usize,
        cancellable: bool,
        work: impl Fn(usize) -> R + Sync,
    ) -> Result<Vec<R>, Cancelled> {
        self.counters.regions.fetch_add(1, Ordering::Relaxed);
        self.counters.tasks.fetch_add(len as u64, Ordering::Relaxed);
        if n_chunks == 0 {
            return if cancellable && self.cancel.is_cancelled() {
                self.counters
                    .cancelled_regions
                    .fetch_add(1, Ordering::Relaxed);
                Err(Cancelled)
            } else {
                Ok(Vec::new())
            };
        }
        let region_entered = Instant::now();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n_chunks);

        let worker_loop = || -> Vec<(usize, R)> {
            let region_start = Instant::now();
            let mut busy = 0u64;
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                if cancellable && self.cancel.is_cancelled() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let t0 = Instant::now();
                let r = work(i);
                busy += t0.elapsed().as_nanos() as u64;
                done.push((i, r));
                self.counters.chunks.fetch_add(1, Ordering::Relaxed);
            }
            let wall = region_start.elapsed().as_nanos() as u64;
            self.counters.busy_nanos.fetch_add(busy, Ordering::Relaxed);
            self.counters
                .idle_nanos
                .fetch_add(wall.saturating_sub(busy), Ordering::Relaxed);
            done
        };

        let mut collected: Vec<(usize, R)> = if workers == 1 {
            worker_loop()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (1..workers).map(|_| scope.spawn(worker_loop)).collect();
                let mut all = worker_loop();
                for h in handles {
                    match h.join() {
                        Ok(part) => all.extend(part),
                        // Re-raise worker panics on the calling thread.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                all
            })
        };

        self.counters.region_nanos.fetch_add(
            region_entered.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if collected.len() < n_chunks {
            // Chunks can only go missing through cancellation.
            debug_assert!(cancellable && self.cancel.is_cancelled());
            self.counters
                .cancelled_regions
                .fetch_add(1, Ordering::Relaxed);
            return Err(Cancelled);
        }
        collected.sort_unstable_by_key(|&(i, _)| i);
        Ok(collected.into_iter().map(|(_, r)| r).collect())
    }
}

impl Default for Exec {
    /// Defaults to the [`Threads::auto`] resolution chain.
    fn default() -> Self {
        Exec::from_threads(Threads::auto())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in [0usize, 1, 2, 7, 255, 256, 257, 1000, 98_431] {
            let b = chunk_bounds(len);
            assert_eq!(b.len(), len.min(MAX_CHUNKS));
            if len > 0 {
                assert_eq!(b[0].0, 0);
                assert_eq!(b[b.len() - 1].1, len);
            }
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].0 < w[0].1, "non-empty");
            }
        }
    }

    #[test]
    fn chunk_items_hint_preserves_results_and_records_metric() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 2, 8] {
            let exec = Exec::new(threads).with_chunk_items(32);
            assert_eq!(exec.chunk_items(), 32);
            assert_eq!(exec.par_map(&items, |&x| x * 3), expected);
            // ceil(100 / 32) fixed-size chunks, regardless of threads.
            assert_eq!(exec.counters().chunks, 4, "threads={threads}");
            assert_eq!(exec.metrics().get("exec.chunk_items"), 32);
        }
        // Children inherit the hint; par_chunks ignores it.
        let exec = Exec::new(2).with_chunk_items(7);
        assert_eq!(exec.child().chunk_items(), 7);
        let n_chunks = exec.par_chunks(&items, |ci, _| ci).len();
        assert_eq!(n_chunks, 100, "par_chunks keeps automatic boundaries");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..5000).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Exec::new(threads);
            let out = exec.par_map(&items, |&x| x * 2 + 1);
            let expected: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_boundaries_independent_of_threads() {
        let items: Vec<u32> = (0..1234).collect();
        let chunked = |threads| {
            Exec::new(threads).par_chunks(&items, |ci, slice| (ci, slice.len(), slice[0]))
        };
        let one = chunked(1);
        assert_eq!(one, chunked(2));
        assert_eq!(one, chunked(8));
        let total: usize = one.iter().map(|&(_, n, _)| n).sum();
        assert_eq!(total, items.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let exec = Exec::new(4);
        let out: Vec<u8> = exec.par_map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        let hits: Vec<AtomicU64> = (0..999).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..999).collect();
        Exec::new(6).par_for_each(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn try_par_map_returns_cancelled_and_stops_claiming() {
        let exec = Exec::new(4);
        let token = exec.cancel_token().clone();
        let executed = AtomicU64::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let res = exec.try_par_map(&items, |&i| {
            if i == 0 {
                token.cancel();
            }
            std::thread::sleep(Duration::from_micros(50));
            executed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(res, Err(Cancelled));
        // Workers may finish the chunks they already claimed, but must
        // not drain the whole queue after the signal.
        assert!(
            executed.load(Ordering::Relaxed) < items.len() as u64 / 2,
            "cancellation should stop the bulk of the work, ran {}",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn cancelling_child_leaves_parent_usable() {
        let parent = Exec::new(4);
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        let out = parent.try_par_map(&[1, 2, 3], |&x: &i32| x + 1).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(child.try_par_map(&[1], |&x: &i32| x), Err(Cancelled));
    }

    #[test]
    fn counters_accumulate_across_children() {
        let exec = Exec::new(2);
        let items: Vec<u64> = (0..100).collect();
        exec.par_map(&items, |&x| x + 1);
        exec.child().par_map(&items, |&x| x + 1);
        let snap = exec.counters();
        assert_eq!(snap.tasks, 200);
        assert_eq!(snap.regions, 2);
        assert!(snap.chunks >= 2);
        assert!(snap.busy_nanos > 0);
        assert!(snap.utilization() > 0.0);
    }

    #[test]
    fn deadline_cancels_region_midway() {
        let exec = Exec::new(2);
        let timed = exec.child_with_deadline(2, Duration::from_millis(20));
        let items: Vec<usize> = (0..10_000).collect();
        let res = timed.try_par_map(&items, |_| {
            std::thread::sleep(Duration::from_micros(200));
        });
        assert_eq!(res, Err(Cancelled), "deadline must stop the region");
        assert!(timed.cancel_token().deadline_expired());
        assert!(!exec.is_cancelled(), "parent outlives the child deadline");
        let snap = exec.counters();
        assert!(snap.cancelled_regions >= 1);
        // The parent still works after the child expired.
        assert_eq!(exec.par_map(&[1, 2], |&x: &i32| x * 10), vec![10, 20]);
    }

    #[test]
    fn region_wall_time_is_recorded() {
        let exec = Exec::new(2);
        let items: Vec<usize> = (0..64).collect();
        exec.par_map(&items, |_| std::thread::sleep(Duration::from_micros(100)));
        let snap = exec.counters();
        assert!(snap.region_nanos > 0, "region wall time must accumulate");
        assert_eq!(snap.cancelled_regions, 0);
    }

    #[test]
    fn worker_panics_propagate() {
        let exec = Exec::new(4);
        let items: Vec<usize> = (0..500).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.par_map(&items, |&i| {
                assert!(i != 250, "boom");
                i
            })
        }));
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }
}
