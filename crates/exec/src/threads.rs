//! Thread-count selection.

/// Where a pool's thread count comes from, in priority order:
///
/// 1. an explicit request (CLI `--threads N`);
/// 2. the `TNET_THREADS` environment variable;
/// 3. [`std::thread::available_parallelism`] (falling back to 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Threads {
    /// Explicit request; `None` defers to the environment / hardware.
    pub requested: Option<usize>,
}

impl Threads {
    /// An explicit thread count (clamped to at least 1 at resolution).
    pub fn exact(n: usize) -> Self {
        Threads { requested: Some(n) }
    }

    /// Defer entirely to `TNET_THREADS` / hardware.
    pub fn auto() -> Self {
        Threads { requested: None }
    }

    /// Resolves the effective thread count (always >= 1).
    pub fn resolve(&self) -> usize {
        if let Some(n) = self.requested {
            return n.max(1);
        }
        if let Ok(v) = std::env::var("TNET_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_beats_everything() {
        assert_eq!(Threads::exact(3).resolve(), 3);
        assert_eq!(Threads::exact(0).resolve(), 1, "clamped");
    }

    #[test]
    fn auto_is_positive() {
        // Whatever the environment says, the answer is a usable count.
        assert!(Threads::auto().resolve() >= 1);
    }
}
