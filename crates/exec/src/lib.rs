//! # tnet-exec
//!
//! A dependency-free parallel execution runtime for the `tnet-mine`
//! workspace, built entirely on `std::thread::scope`.
//!
//! The paper's central complaint is that substructure discovery does not
//! scale (SUBDUE: 3.25 h on a 100-vertex graph, §5.1; FSG: out of memory
//! on temporal transactions, §6.1). This crate is the workspace's answer
//! on the wall-clock axis: every miner hot path (FSG support counting,
//! Algorithm 1 partition mining, gSpan support counting, SUBDUE beam
//! evaluation, EM's E-step) fans out through an [`Exec`] handle.
//!
//! Design pillars:
//!
//! * **Determinism** — [`Exec::par_map`] assembles results in input
//!   order, and work is chunked by a policy that depends only on input
//!   *length* (never thread count), so parallel output is byte-identical
//!   to sequential output at any thread count. `threads = 1` runs the
//!   same chunked code path.
//! * **Self-balancing** — workers claim chunks from a shared atomic
//!   cursor; no work-stealing deques, no channels, no locks.
//! * **Cooperative cancellation** — a hierarchical [`CancelToken`] lets
//!   a memory-budget abort (or any caller) stop all workers of a region
//!   promptly via [`Exec::try_par_map`], without poisoning sibling work.
//!   Tokens can carry a deadline ([`CancelToken::with_deadline`]) so a
//!   supervisor can time-box a subtree of work.
//! * **Fault injection** — the [`failpoint`] module arms named sites in
//!   miner hot paths (`TNET_FAILPOINTS=site=panic|delay:ms|err`) so
//!   degradation paths are deterministically testable.
//! * **Observability** — per-pool [`PoolCounters`] record tasks run,
//!   chunks claimed, and busy vs idle nanoseconds across regions, and
//!   every handle carries a `tnet-obs` context ([`Exec::with_obs`]): a
//!   tracing [`Span`] that phase timers nest under and a
//!   [`MetricsRegistry`] that run stats fold into. Both are inert
//!   no-ops until a caller attaches them (e.g. the CLI's `--trace`).
//!
//! ```
//! use tnet_exec::Exec;
//!
//! let exec = Exec::new(4);
//! let squares = exec.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

mod cancel;
mod counters;
pub mod failpoint;
mod pool;
mod threads;

pub use cancel::{CancelToken, Cancelled};
pub use counters::{CountersSnapshot, PoolCounters};
pub use pool::{Exec, L2_TXN_CHUNK_ITEMS};
pub use threads::Threads;
// Re-exported so downstream layers can name the observability types
// without a separate dependency edge.
pub use tnet_obs::{MetricsRegistry, Span, SpanNode, Tracer};
