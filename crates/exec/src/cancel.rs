//! Cooperative, hierarchical cancellation.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cancellation signal shared between a controller and any number of
/// workers.
///
/// Tokens form a tree: cancelling a parent cancels every descendant,
/// while cancelling a child leaves the parent (and the child's siblings)
/// running. This is what lets one FSG mine abort on a memory-budget
/// overrun without poisoning concurrent sibling mines that share the
/// same top-level runtime.
///
/// A token may additionally carry a **deadline**: past it, the token
/// reads as cancelled without anyone calling [`CancelToken::cancel`].
/// Deadlines compose with the hierarchy — a child expires when its own
/// deadline *or* any ancestor's passes.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A fresh root token that reads as cancelled once `timeout` has
    /// elapsed from the moment of construction.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(saturating_deadline(timeout)),
                parent: None,
            }),
        }
    }

    /// A child token: observes this token's cancellation, but cancelling
    /// the child does not cancel `self`.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: Some(self.clone()),
            }),
        }
    }

    /// A child token with its own deadline `timeout` from now. The child
    /// expires when its deadline passes or the parent cancels/expires;
    /// the parent is unaffected either way.
    pub fn child_with_deadline(&self, timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(saturating_deadline(timeout)),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Signals cancellation to this token and all its descendants.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once this token or any ancestor has been cancelled or has
    /// passed its deadline.
    pub fn is_cancelled(&self) -> bool {
        let mut now: Option<Instant> = None;
        let mut cur = Some(self);
        while let Some(tok) = cur {
            if tok.inner.flag.load(Ordering::Acquire) {
                return true;
            }
            if let Some(deadline) = tok.inner.deadline {
                // One clock read per check, shared down the chain.
                let t = *now.get_or_insert_with(Instant::now);
                if t >= deadline {
                    return true;
                }
            }
            cur = tok.inner.parent.as_ref();
        }
        false
    }

    /// Sleeps for up to `dur`, waking early if the token cancels.
    /// Returns `true` if the sleep was cut short by cancellation.
    ///
    /// Polls in ≤ 10 ms slices: worst-case 10 ms of extra latency on a
    /// cancel, no extra threads or condvars. Fits pacing loops — a
    /// writer waiting out its publish interval, a server draining
    /// connections — where the alternative is a bare `thread::sleep`
    /// that holds shutdown hostage for the full interval.
    pub fn sleep_until_cancelled(&self, dur: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(10);
        let deadline = saturating_deadline(dur);
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            std::thread::sleep((deadline - now).min(SLICE));
        }
    }

    /// True once this token's own deadline, or any ancestor's, has
    /// passed — regardless of explicit cancellation. Lets a supervisor
    /// distinguish "ran out of time" from "was told to stop".
    pub fn deadline_expired(&self) -> bool {
        let mut now: Option<Instant> = None;
        let mut cur = Some(self);
        while let Some(tok) = cur {
            if let Some(deadline) = tok.inner.deadline {
                let t = *now.get_or_insert_with(Instant::now);
                if t >= deadline {
                    return true;
                }
            }
            cur = tok.inner.parent.as_ref();
        }
        false
    }
}

/// `now + timeout`, saturated to a representable far-future instant.
///
/// `Instant::checked_add` returns `None` when the sum is not
/// representable; storing that `None` as the token's deadline would
/// read as "no deadline at all" — a token asked to expire in
/// `Duration::MAX` would silently never expire *and* stop counting as
/// deadline-bearing, disabling supervision for the section it guards.
/// Instead, an unrepresentable deadline is pinned explicitly to the
/// furthest future the platform can represent: it never fires within
/// any realistic process lifetime (the intent of an absurdly large
/// timeout), but the token still carries a deadline and still composes
/// with ancestor cancellation and ancestor deadlines.
fn saturating_deadline(timeout: Duration) -> Instant {
    let now = Instant::now();
    if let Some(d) = now.checked_add(timeout) {
        return d;
    }
    // Binary-search the largest representable offset from `now`.
    let mut lo = Duration::ZERO;
    let mut hi = timeout;
    while hi - lo > Duration::from_secs(1) {
        let mid = lo + (hi - lo) / 2;
        if now.checked_add(mid).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    now.checked_add(lo).unwrap_or(now)
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Returned by fallible parallel regions ([`crate::Exec::try_par_map`])
/// when the region's token was cancelled before all chunks completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel region cancelled")
    }
}

impl Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_observes_parent_not_vice_versa() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        let sibling = root.child();

        assert!(!grandchild.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled(), "descendants observe");
        assert!(!root.is_cancelled(), "parents do not");
        assert!(!sibling.is_cancelled(), "siblings do not");

        root.cancel();
        assert!(sibling.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn deadline_expires_token() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled(), "past-deadline token reads cancelled");
        assert!(t.deadline_expired());
    }

    #[test]
    fn child_deadline_does_not_touch_parent() {
        let root = CancelToken::new();
        let child = root.child_with_deadline(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(15));
        assert!(child.is_cancelled());
        assert!(child.deadline_expired());
        assert!(!root.is_cancelled(), "deadline is scoped to the child");
        assert!(!root.deadline_expired());
        // A fresh sibling is unaffected by the expired one.
        let sibling = root.child();
        assert!(!sibling.is_cancelled());
    }

    #[test]
    fn ancestor_deadline_reaches_descendants() {
        let root = CancelToken::with_deadline(Duration::from_millis(5));
        let child = root.child();
        std::thread::sleep(Duration::from_millis(15));
        assert!(child.is_cancelled(), "children observe ancestor deadlines");
        assert!(child.deadline_expired());
    }

    #[test]
    fn unrepresentable_deadline_saturates_and_stays_supervised() {
        // `Instant::now() + Duration::MAX` is unrepresentable on every
        // real platform; the token must pin a far-future deadline rather
        // than silently dropping it.
        let t = CancelToken::with_deadline(Duration::MAX);
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired(), "far future must not read expired");
        // Supervision stays active: explicit cancellation still works...
        t.cancel();
        assert!(t.is_cancelled());
        // ...and so does an ancestor deadline through such a child.
        let root = CancelToken::with_deadline(Duration::from_millis(5));
        let child = root.child_with_deadline(Duration::MAX);
        std::thread::sleep(Duration::from_millis(15));
        assert!(
            child.is_cancelled() && child.deadline_expired(),
            "ancestor deadline must reach an overflow-saturated child"
        );
    }

    #[test]
    fn sleep_runs_full_duration_when_uncancelled() {
        let t = CancelToken::new();
        let start = Instant::now();
        let cut_short = t.sleep_until_cancelled(Duration::from_millis(30));
        assert!(!cut_short);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn sleep_wakes_early_on_cancel() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t2.cancel();
        });
        let start = Instant::now();
        let cut_short = t.sleep_until_cancelled(Duration::from_secs(10));
        assert!(cut_short, "cancel must interrupt the sleep");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "woke well before the requested duration"
        );
        h.join().unwrap();
    }

    #[test]
    fn sleep_returns_immediately_when_already_cancelled() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.sleep_until_cancelled(Duration::from_secs(10)));
    }

    #[test]
    fn far_deadline_is_inert() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_expired(), "explicit cancel is not a deadline");
    }
}
