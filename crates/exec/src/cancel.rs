//! Cooperative, hierarchical cancellation.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cancellation signal shared between a controller and any number of
/// workers.
///
/// Tokens form a tree: cancelling a parent cancels every descendant,
/// while cancelling a child leaves the parent (and the child's siblings)
/// running. This is what lets one FSG mine abort on a memory-budget
/// overrun without poisoning concurrent sibling mines that share the
/// same top-level runtime.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                parent: None,
            }),
        }
    }

    /// A child token: observes this token's cancellation, but cancelling
    /// the child does not cancel `self`.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Signals cancellation to this token and all its descendants.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(tok) = cur {
            if tok.inner.flag.load(Ordering::Acquire) {
                return true;
            }
            cur = tok.inner.parent.as_ref();
        }
        false
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Returned by fallible parallel regions ([`crate::Exec::try_par_map`])
/// when the region's token was cancelled before all chunks completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel region cancelled")
    }
}

impl Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_observes_parent_not_vice_versa() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        let sibling = root.child();

        assert!(!grandchild.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled(), "descendants observe");
        assert!(!root.is_cancelled(), "parents do not");
        assert!(!sibling.is_cancelled(), "siblings do not");

        root.cancel();
        assert!(sibling.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }
}
