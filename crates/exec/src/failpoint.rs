//! Deterministic fault injection for supervision tests.
//!
//! A *failpoint* is a named site in production code (`fsg::candidate_gen`,
//! `subdue::beam_eval`, `em::iteration`, `csv::ingest`, `serve::publish`,
//! `serve::wal_append`, `serve::wal_fsync`, `serve::snapshot_write`,
//! `serve::recover`, ...) where a fault
//! can be armed at runtime — from the `TNET_FAILPOINTS` environment
//! variable or programmatically via [`arm`] — without recompiling and
//! without any cost on the unarmed path beyond one relaxed atomic load.
//!
//! Syntax (comma-separated sites):
//!
//! ```text
//! TNET_FAILPOINTS="fsg::candidate_gen=panic,em::iteration=delay:50,csv::ingest=err"
//! ```
//!
//! Actions:
//!
//! * `panic` — panic at the site (exercises `catch_unwind` isolation),
//! * `delay:MS` — sleep `MS` milliseconds at the site (exercises
//!   deadline-based cancellation),
//! * `err` — return an injected [`Fault`] error from the site
//!   (exercises typed error propagation).
//!
//! This is std-only by design: a `Mutex<HashMap>` registry behind an
//! `AtomicBool` fast path, no macros, no linker tricks.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Return an injected [`Fault`] error.
    Err,
}

/// The error produced by a site armed with [`FailAction::Err`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The site that produced the fault.
    pub site: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl Error for Fault {}

/// Fast path: false ⇒ no site is armed and [`hit`] returns immediately.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, FailAction>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// One-time arming from `TNET_FAILPOINTS`, applied before the first
/// [`hit`] that finds the registry untouched.
fn init_from_env() {
    static ENV_INIT: OnceLock<()> = OnceLock::new();
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("TNET_FAILPOINTS") {
            if !spec.trim().is_empty() {
                // Invalid specs are reported, not fatal: fault injection
                // must never take down a run that didn't ask for faults.
                if let Err(e) = arm(&spec) {
                    eprintln!("warning: ignoring TNET_FAILPOINTS: {e}");
                }
            }
        }
    });
}

/// Parses one action: `panic`, `delay:MS`, or `err`.
fn parse_action(s: &str) -> Result<FailAction, String> {
    match s {
        "panic" => Ok(FailAction::Panic),
        "err" => Ok(FailAction::Err),
        _ => match s.strip_prefix("delay:") {
            Some(ms) => ms
                .parse::<u64>()
                .map(|ms| FailAction::Delay(Duration::from_millis(ms)))
                .map_err(|_| format!("bad delay milliseconds `{ms}`")),
            None => Err(format!(
                "unknown action `{s}` (expected panic | delay:MS | err)"
            )),
        },
    }
}

/// Arms failpoints from a `site=action[,site=action...]` spec, merging
/// into (and overriding) whatever is currently armed.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut parsed: Vec<(String, FailAction)> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action) = entry
            .split_once('=')
            .ok_or_else(|| format!("missing `=` in failpoint entry `{entry}`"))?;
        parsed.push((site.trim().to_string(), parse_action(action.trim())?));
    }
    if parsed.is_empty() {
        return Ok(());
    }
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    for (site, action) in parsed {
        reg.insert(site, action);
    }
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint. Subsequent [`hit`] calls are no-ops (the
/// environment variable is only consulted once per process).
pub fn disarm() {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.clear();
    ARMED.store(false, Ordering::Release);
}

/// The action currently armed at `site`, if any.
pub fn check(site: &str) -> Option<FailAction> {
    init_from_env();
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    registry()
        .lock()
        .expect("failpoint registry poisoned")
        .get(site)
        .copied()
}

/// Evaluates the failpoint named `site`: a no-op `Ok(())` when unarmed,
/// otherwise panics, sleeps, or returns `Err(Fault)` per the armed
/// action. Call this from production code at each injection site.
pub fn hit(site: &str) -> Result<(), Fault> {
    match check(site) {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{site}`"),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FailAction::Err) => Err(Fault {
            site: site.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; keep these tests serialized.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_action("explode").is_err());
        assert!(parse_action("delay:abc").is_err());
        assert!(arm("no-equals-sign").is_err());
        assert_eq!(
            parse_action("delay:250"),
            Ok(FailAction::Delay(Duration::from_millis(250)))
        );
    }

    #[test]
    fn unarmed_hit_is_ok() {
        let _g = LOCK.lock().unwrap();
        disarm();
        assert_eq!(hit("nowhere::site"), Ok(()));
    }

    #[test]
    fn armed_err_and_disarm_roundtrip() {
        let _g = LOCK.lock().unwrap();
        disarm();
        arm("a::b=err, c::d=delay:1").unwrap();
        assert_eq!(
            hit("a::b"),
            Err(Fault {
                site: "a::b".to_string()
            })
        );
        assert_eq!(hit("c::d"), Ok(()), "delay returns Ok after sleeping");
        assert_eq!(hit("x::y"), Ok(()), "unarmed sites unaffected");
        disarm();
        assert_eq!(hit("a::b"), Ok(()));
    }

    #[test]
    fn armed_panic_panics() {
        let _g = LOCK.lock().unwrap();
        disarm();
        arm("p::q=panic").unwrap();
        let r = std::panic::catch_unwind(|| hit("p::q"));
        disarm();
        assert!(r.is_err(), "panic action must panic");
    }
}
