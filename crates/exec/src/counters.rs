//! Per-pool execution counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters for one [`crate::Exec`] pool (shared by all
/// child handles). All updates are relaxed — these are observability
/// numbers, not synchronization.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Items submitted across all parallel regions.
    pub(crate) tasks: AtomicU64,
    /// Chunks claimed and executed by workers.
    pub(crate) chunks: AtomicU64,
    /// Parallel regions entered (one per `par_*` call).
    pub(crate) regions: AtomicU64,
    /// Nanoseconds workers spent inside user work.
    pub(crate) busy_nanos: AtomicU64,
    /// Nanoseconds workers spent claiming/waiting (region wall time minus
    /// busy time, summed per worker).
    pub(crate) idle_nanos: AtomicU64,
}

impl PoolCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            idle_nanos: self.idle_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of [`PoolCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub tasks: u64,
    pub chunks: u64,
    pub regions: u64,
    pub busy_nanos: u64,
    pub idle_nanos: u64,
}

impl CountersSnapshot {
    /// Fraction of worker wall time spent in user work, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_nanos + self.idle_nanos;
        if total == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / total as f64
    }
}

impl fmt::Display for CountersSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks in {} chunks over {} regions; busy {:.1}ms, idle {:.1}ms ({:.0}% utilization)",
            self.tasks,
            self.chunks,
            self.regions,
            self.busy_nanos as f64 / 1e6,
            self.idle_nanos as f64 / 1e6,
            self.utilization() * 100.0
        )
    }
}
