//! Per-pool execution counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters for one [`crate::Exec`] pool (shared by all
/// child handles). All updates are relaxed — these are observability
/// numbers, not synchronization.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Items submitted across all parallel regions.
    pub(crate) tasks: AtomicU64,
    /// Chunks claimed and executed by workers.
    pub(crate) chunks: AtomicU64,
    /// Parallel regions entered (one per `par_*` call).
    pub(crate) regions: AtomicU64,
    /// Regions that ended early because their token was cancelled (or a
    /// deadline passed) before every chunk completed.
    pub(crate) cancelled_regions: AtomicU64,
    /// Wall-clock nanoseconds spent inside regions, measured on the
    /// calling thread from entry to reassembly.
    pub(crate) region_nanos: AtomicU64,
    /// Nanoseconds workers spent inside user work.
    pub(crate) busy_nanos: AtomicU64,
    /// Nanoseconds workers spent claiming/waiting (region wall time minus
    /// busy time, summed per worker).
    pub(crate) idle_nanos: AtomicU64,
}

impl PoolCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            cancelled_regions: self.cancelled_regions.load(Ordering::Relaxed),
            region_nanos: self.region_nanos.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            idle_nanos: self.idle_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of [`PoolCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub tasks: u64,
    pub chunks: u64,
    pub regions: u64,
    pub cancelled_regions: u64,
    pub region_nanos: u64,
    pub busy_nanos: u64,
    pub idle_nanos: u64,
}

impl CountersSnapshot {
    /// Folds this snapshot into a [`MetricsRegistry`] under `exec.*`
    /// names — the pool's slice of the unified counter namespace.
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add("exec.tasks", self.tasks);
        metrics.add("exec.chunks", self.chunks);
        metrics.add("exec.regions", self.regions);
        metrics.add("exec.cancelled_regions", self.cancelled_regions);
        metrics.add("exec.region_nanos", self.region_nanos);
        metrics.add("exec.busy_nanos", self.busy_nanos);
        metrics.add("exec.idle_nanos", self.idle_nanos);
    }

    /// Fraction of worker wall time spent in user work, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_nanos + self.idle_nanos;
        if total == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / total as f64
    }
}

impl fmt::Display for CountersSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks in {} chunks over {} regions ({} cancelled, {:.1}ms wall); \
             busy {:.1}ms, idle {:.1}ms ({:.0}% utilization)",
            self.tasks,
            self.chunks,
            self.regions,
            self.cancelled_regions,
            self.region_nanos as f64 / 1e6,
            self.busy_nanos as f64 / 1e6,
            self.idle_nanos as f64 / 1e6,
            self.utilization() * 100.0
        )
    }
}
