#!/bin/bash
# Regenerates the EXPERIMENTS.md measurement inputs.
set -x
./ci.sh || exit 1
cargo run --release --example dataset_stats -- 1.0 > /tmp/e1_full.txt 2>/tmp/e1_full.err
./target/release/tnet report --scale 0.05 > /tmp/report05.txt 2>/tmp/report05.err
echo ALL_DONE
