#!/bin/bash
# Tier-1 gate: formatting, lints, and the offline build+test the paper
# reproduction is judged by. Runs with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace --offline
cargo test -q --workspace --offline

echo "== fault injection: supervised report under every failpoint site"
# Each armed site must leave the report standing: exit 0, a per-section
# failure (or degraded) notice, and the end-of-report summary line.
TNET="target/release/tnet"
REPORT_ARGS=(report --scale 0.008 --seed 42 --extensions false --threads 2)
for spec in \
    "fsg::candidate_gen=panic" \
    "fsg::candidate_gen=err" \
    "subdue::beam_eval=panic" \
    "subdue::beam_eval=err" \
    "em::iteration=panic" \
    "em::iteration=err"
do
    echo "-- TNET_FAILPOINTS=$spec"
    out=$(TNET_FAILPOINTS="$spec" "$TNET" "${REPORT_ARGS[@]}")
    grep -q '!! section failed:' <<<"$out"
    grep -q '^sections: ' <<<"$out"
    ! grep -q '^sections: .*, 0 failed$' <<<"$out"
done
# A delay fault plus a section deadline: the slowed section is killed by
# the deadline, everything else completes.
echo "-- TNET_FAILPOINTS=em::iteration=delay:2000 --deadline-secs 1"
out=$(TNET_FAILPOINTS="em::iteration=delay:2000" \
    "$TNET" "${REPORT_ARGS[@]}" --deadline-secs 1)
grep -q 'exceeded its .* deadline' <<<"$out"
grep -q '^sections: ' <<<"$out"
# csv::ingest arms the CSV reader, not the report: a malformed-free file
# still fails to load, with the injected fault and a line number, exit 1.
echo "-- TNET_FAILPOINTS=csv::ingest=err (stats --input)"
"$TNET" gen --scale 0.005 --seed 42 --out /tmp/tnet_ci_fault.csv >/dev/null
set +e
TNET_FAILPOINTS="csv::ingest=err" \
    "$TNET" stats --input /tmp/tnet_ci_fault.csv 2>/tmp/tnet_ci_fault.err
code=$?
set -e
test "$code" -eq 1
grep -q 'injected fault' /tmp/tnet_ci_fault.err
# No failpoint needed for real bad data: a NaN in any numeric field is a
# typed runtime error with a 1-based line number — one stderr line, exit
# 1, never a panic.
echo "-- NaN field rejection (stats --input)"
head -n 1 /tmp/tnet_ci_fault.csv > /tmp/tnet_ci_nan.csv
echo '1,0,1,44.5,-88.0,41.9,-87.6,200,NaN,8,TL' >> /tmp/tnet_ci_nan.csv
set +e
"$TNET" stats --input /tmp/tnet_ci_nan.csv 2>/tmp/tnet_ci_nan.err
code=$?
set -e
test "$code" -eq 1
test "$(wc -l < /tmp/tnet_ci_nan.err)" -eq 1
grep -q 'non-finite' /tmp/tnet_ci_nan.err
grep -q 'line 2' /tmp/tnet_ci_nan.err
rm -f /tmp/tnet_ci_fault.csv /tmp/tnet_ci_fault.err \
    /tmp/tnet_ci_nan.csv /tmp/tnet_ci_nan.err
# Unarmed control: full success and a clean summary.
echo "-- unarmed control"
out=$("$TNET" "${REPORT_ARGS[@]}")
grep -q '^sections: 13 ok, 0 degraded, 0 failed$' <<<"$out"

echo "== frozen-vs-arena differential: miners agree across representations"
# FSG, gSpan, and SUBDUE mined through the frozen-CSR snapshot must match
# the arena path byte-for-byte (patterns, supports, TIDs, instance ids).
cargo test -q -p tnet-core --offline --test determinism \
    frozen_and_arena_miners_agree

echo "== trace smoke: --trace-json round-trips through the schema parser"
TRACE_OUT=/tmp/tnet_ci_trace.json
"$TNET" mine --scale 0.01 --partitions 4 --support 3 --max-edges 3 \
    --reps 1 --verbose true --trace --trace-json "$TRACE_OUT" \
    > /tmp/tnet_ci_trace.out
grep -q '^--- trace' /tmp/tnet_ci_trace.out
grep -q 'fsg' /tmp/tnet_ci_trace.out
grep -q 'fsg.iso_tests' /tmp/tnet_ci_trace.out
# The frozen-graph counters flow into both the verbose summary and the
# unified metrics namespace.
grep -q '^frozen graphs:' /tmp/tnet_ci_trace.out
grep -q 'graph.freeze_count' /tmp/tnet_ci_trace.out
grep -q 'graph.csr_bytes' /tmp/tnet_ci_trace.out
# Data-layout counters (DESIGN.md §14): fingerprint table bytes, per-run
# rejects, and the L2 chunk-size hint all surface in the same namespace.
grep -q '^data layout:' /tmp/tnet_ci_trace.out
grep -q 'graph.fingerprint_bytes' /tmp/tnet_ci_trace.out
grep -q 'fsg.fingerprint_rejects' /tmp/tnet_ci_trace.out
grep -q 'fsg.bitset_intersections' /tmp/tnet_ci_trace.out
grep -q 'exec.chunk_items' /tmp/tnet_ci_trace.out
rm -f /tmp/tnet_ci_trace.out

echo "== neighborhood smoke: mine --mode neighborhood, trace, thread invariance"
# The r-hop neighborhood miner runs on the un-partitioned OD graph; its
# counters flow through the unified namespace, its pattern output is
# byte-identical at any thread count, and its trace export round-trips
# through the new `tnet trace` summarizer.
NBHD_TRACE=/tmp/tnet_ci_nbhd_trace.json
NBHD_ARGS=(mine --scale 0.01 --mode neighborhood --radius 1 --support 3 \
    --max-edges 3)
"$TNET" "${NBHD_ARGS[@]}" --verbose true --trace --trace-json "$NBHD_TRACE" \
    > /tmp/tnet_ci_nbhd.out 2>/dev/null
grep -q 'frequent neighborhood patterns' /tmp/tnet_ci_nbhd.out
grep -q 'nbhd.centers' /tmp/tnet_ci_nbhd.out
grep -q 'nbhd.iso_tests' /tmp/tnet_ci_nbhd.out
grep -q 'nbhd.fingerprint_rejects' /tmp/tnet_ci_nbhd.out
"$TNET" "${NBHD_ARGS[@]}" --threads 1 > /tmp/tnet_ci_nbhd_t1.out 2>/dev/null
"$TNET" "${NBHD_ARGS[@]}" --threads 2 > /tmp/tnet_ci_nbhd_t2.out 2>/dev/null
"$TNET" "${NBHD_ARGS[@]}" --threads 8 > /tmp/tnet_ci_nbhd_t8.out 2>/dev/null
diff /tmp/tnet_ci_nbhd_t1.out /tmp/tnet_ci_nbhd_t2.out
diff /tmp/tnet_ci_nbhd_t1.out /tmp/tnet_ci_nbhd_t8.out
# `tnet trace` summarizes the export...
"$TNET" trace --input "$NBHD_TRACE" > /tmp/tnet_ci_nbhd_sum.out
grep -q 'total wall' /tmp/tnet_ci_nbhd_sum.out
grep -q 'nbhd.centers' /tmp/tnet_ci_nbhd_sum.out
# ...and refuses a truncated one with a single stderr line, exit 1 —
# never a panic (satellite contract from PR 2).
head -c 40 "$NBHD_TRACE" > /tmp/tnet_ci_nbhd_trunc.json
set +e
"$TNET" trace --input /tmp/tnet_ci_nbhd_trunc.json \
    > /dev/null 2> /tmp/tnet_ci_nbhd_trunc.err
code=$?
set -e
test "$code" -eq 1
test "$(wc -l < /tmp/tnet_ci_nbhd_trunc.err)" -eq 1
# The export satisfies the shared tnet-trace/v1 validator.
cargo run --release -q -p tnet-bench --offline --bin bench_miners -- \
    --validate-trace "$NBHD_TRACE"
rm -f "$NBHD_TRACE" /tmp/tnet_ci_nbhd.out /tmp/tnet_ci_nbhd_t1.out \
    /tmp/tnet_ci_nbhd_t2.out /tmp/tnet_ci_nbhd_t8.out \
    /tmp/tnet_ci_nbhd_sum.out /tmp/tnet_ci_nbhd_trunc.json \
    /tmp/tnet_ci_nbhd_trunc.err

echo "== temporal smoke: sliding windows, incremental ≡ full, flow patterns"
# A sliding day-granularity session run: the session summary and flow
# report print, and the incremental path's pattern output (per-window
# counts, merged top-N) is byte-identical to full per-window re-mining.
# The diff runs without --verbose: work counters (iso tests, embeddings)
# legitimately differ between the two counting paths; patterns must not.
TEMPORAL_ARGS=(temporal --scale 0.01 --granularity day --window 3 \
    --slide 1 --support 3 --max-edges 2)
"$TNET" "${TEMPORAL_ARGS[@]}" --flow true --incremental true \
    > /tmp/tnet_ci_temporal_inc.out 2>/dev/null
grep -q '^session: .* incremental' /tmp/tnet_ci_temporal_inc.out
grep -q '^flow patterns:' /tmp/tnet_ci_temporal_inc.out
grep -q '^planted structure surfaced at day granularity:' \
    /tmp/tnet_ci_temporal_inc.out
"$TNET" "${TEMPORAL_ARGS[@]}" --flow true --incremental false \
    > /tmp/tnet_ci_temporal_full.out 2>/dev/null
# Only the mode header and session lines may differ between the paths.
diff <(grep -vE '^session|mode\)$' /tmp/tnet_ci_temporal_inc.out) \
     <(grep -vE '^session|mode\)$' /tmp/tnet_ci_temporal_full.out)
# ...and the incremental output is thread-invariant.
"$TNET" "${TEMPORAL_ARGS[@]}" --threads 8 \
    > /tmp/tnet_ci_temporal_t8.out 2>/dev/null
diff <(grep -v '^flow\|^planted\|^  flow\|^  cycle' \
        /tmp/tnet_ci_temporal_inc.out) /tmp/tnet_ci_temporal_t8.out
# Inverted dates (delivery before pickup) are a typed error: one stderr
# line, exit 1, never a panic. CSV ingest catches this case first; the
# partition-layer TemporalError covers non-CSV paths (unit-tested).
"$TNET" gen --scale 0.005 --seed 42 --out /tmp/tnet_ci_temporal.csv \
    >/dev/null
head -n 1 /tmp/tnet_ci_temporal.csv > /tmp/tnet_ci_temporal_bad.csv
echo '1,5,1,44.5,-88.0,41.9,-87.6,200,30000,8,TL' \
    >> /tmp/tnet_ci_temporal_bad.csv
set +e
"$TNET" temporal --input /tmp/tnet_ci_temporal_bad.csv --granularity day \
    > /dev/null 2> /tmp/tnet_ci_temporal_bad.err
code=$?
set -e
test "$code" -eq 1
test "$(wc -l < /tmp/tnet_ci_temporal_bad.err)" -eq 1
grep -q 'precedes requested pickup' /tmp/tnet_ci_temporal_bad.err
rm -f /tmp/tnet_ci_temporal_inc.out /tmp/tnet_ci_temporal_full.out \
    /tmp/tnet_ci_temporal_t8.out /tmp/tnet_ci_temporal.csv \
    /tmp/tnet_ci_temporal_bad.csv /tmp/tnet_ci_temporal_bad.err

echo "== bench smoke: miner report emits valid JSON, iso_tests under gate"
# The smoke run times all three miners once, writes the report, and exits
# non-zero if FSG's deterministic iso_tests counter on the default
# workload regresses past the 5x-drop gate baked into the binary. The run
# itself asserts that frozen-vs-arena and every per-technique toggle
# (bitset TIDs off, fingerprints off) mine byte-identical pattern sets.
# --validate re-parses the emitted file and checks all miners are
# present, the data-layout counters are live, the per-technique
# off/on wall ratios clear the slowdown floor, and the
# partition-vs-neighborhood block has live rows (a completed
# neighborhood run per row; the committed full report must also carry
# the ≥10× scaled row).
BENCH_OUT=/tmp/tnet_ci_bench.json
cargo run --release -q -p tnet-bench --offline --bin bench_miners -- \
    --smoke --out "$BENCH_OUT"
cargo run --release -q -p tnet-bench --offline --bin bench_miners -- \
    --validate "$BENCH_OUT"
# The committed full report must pass the same gates, including the
# fingerprint-reject sanity check on the dense large_txn workload
# (smoke runs skip that workload).
cargo run --release -q -p tnet-bench --offline --bin bench_miners -- \
    --validate BENCH_miners.json
# The CLI's trace export (written above) must satisfy the same
# tnet-trace/v1 validator that checks the embedded bench trace block.
cargo run --release -q -p tnet-bench --offline --bin bench_miners -- \
    --validate-trace "$TRACE_OUT"
rm -f "$BENCH_OUT" "$TRACE_OUT"

echo "== serve smoke: daemon on an ephemeral port, mixed query script"
# Start the daemon, read the ephemeral port from --port-file, run a
# scripted query mix over /dev/tcp (well-formed queries, a repeat to
# drive the cache, and a malformed line that must get an error reply,
# not kill anything), check the cache-hit counter rose, and shut down
# cleanly through the wire protocol — exit 0.
SERVE_PORT_FILE=/tmp/tnet_ci_serve_port.txt
SERVE_LOG=/tmp/tnet_ci_serve.log
rm -f "$SERVE_PORT_FILE"
"$TNET" serve --scale 0.005 --seed 42 --cache 64 \
    --publish-interval-ms 50 --shutdown-on-stdin-eof false \
    --port-file "$SERVE_PORT_FILE" > "$SERVE_LOG" &
SERVE_PID=$!
for _ in $(seq 1 300); do
    [ -s "$SERVE_PORT_FILE" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
    sleep 0.1
done
SERVE_PORT=$(cat "$SERVE_PORT_FILE")
# Opens fd 3 to the daemon with jittered exponential backoff: a daemon
# that just wrote its port file may not be accepting yet, and fixed-step
# retries from parallel CI jobs would stampede the listener in lockstep.
serve_connect() {
    local port=$1 ms=25 attempt
    for attempt in 1 2 3 4 5 6; do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            exec 3<>"/dev/tcp/127.0.0.1/$port"
            return 0
        fi
        sleep "$(awk -v ms="$ms" -v j="$((RANDOM % ms))" \
            'BEGIN{printf "%.3f", (ms + j) / 1000}')"
        ms=$((ms * 2))
    done
    echo "serve smoke: cannot connect on port $port after $attempt attempts" >&2
    return 1
}
serve_connect "$SERVE_PORT"
serve_rpc() {
    printf '%s\n' "$1" >&3
    IFS= read -r REPLY_LINE <&3
    printf '%s\n' "$REPLY_LINE"
}
serve_rpc '{"op":"ping"}'                                    | grep -q '"ok":true'
serve_rpc '{"op":"stats"}'                                   | grep -q '"report":'
serve_rpc '{"op":"stats"}'                                   | grep -q '"ok":true'
serve_rpc '{"op":"support","labeling":"gw","labels":[0,1]}'  | grep -q '"count":'
serve_rpc '{"op":"pattern","partitions":4,"support":3,"max_edges":3,"reps":1}' \
                                                             | grep -q '"lines":'
# Malformed input gets a one-line typed error reply; the connection and
# the daemon survive it.
serve_rpc 'this is not json'                                 | grep -q '"kind":"protocol"'
serve_rpc '{"op":"ping"}'                                    | grep -q '"ok":true'
# The repeated stats query must have landed in the result cache.
serve_rpc '{"op":"trace"}' | grep -q '"serve.cache_hits":[1-9]'
serve_rpc '{"op":"shutdown"}'                                | grep -q '"ok":true'
exec 3<&- 3>&-
wait "$SERVE_PID"
grep -q 'shutdown complete' "$SERVE_LOG"
rm -f "$SERVE_PORT_FILE" "$SERVE_LOG"

echo "== durability smoke: acknowledged writes survive SIGKILL"
# A durable daemon ingests acknowledged batches and is SIGKILLed with no
# warning. Restarted on the same data directory it must answer stats and
# support queries exactly like a never-crashed control daemon fed the
# same acknowledged records — only the generation counter may differ
# (the control publishes incrementally; recovery republishes at once).
DUR_DIR=/tmp/tnet_ci_durable
DUR_LOG=/tmp/tnet_ci_durable.log
rm -rf "$DUR_DIR" && mkdir -p "$DUR_DIR"
# One 4-record ingest line with varied, deterministic field values.
ing_batch() {
    local base=$1 recs="" i id
    for i in 0 1 2 3; do
        id=$((base + i))
        recs+="${recs:+,}{\"id\":$id,\"pickup\":$((733000 + id * 7 % 1000))"
        recs+=",\"olat\":$((30 + id % 11)).5,\"olon\":-$((84 + id % 13)).2"
        recs+=",\"dlat\":$((33 + id % 7)).1,\"dlon\":-$((88 + id % 5)).9"
        recs+=",\"distance\":$((200 + id % 17 * 35)).0"
        recs+=",\"weight\":$((8000 + id % 9 * 4000)).0"
        recs+=",\"hours\":$((4 + id % 6 * 2)).5}"
    done
    printf '{"op":"ingest","records":[%s]}' "$recs"
}
# Starts a daemon in the background and connects fd 3 to it.
# Usage: serve_start <logfile> [extra flags...]
serve_start() {
    local log=$1; shift
    rm -f "$SERVE_PORT_FILE"
    "$TNET" serve --publish-interval-ms 25 --shutdown-on-stdin-eof false \
        --port-file "$SERVE_PORT_FILE" "$@" > "$log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 300); do
        [ -s "$SERVE_PORT_FILE" ] && break
        kill -0 "$SERVE_PID" 2>/dev/null || { cat "$log"; return 1; }
        sleep 0.1
    done
    serve_connect "$(cat "$SERVE_PORT_FILE")"
}
# Polls stats until the published generation holds $1 transactions.
serve_await_txns() {
    for _ in $(seq 1 300); do
        serve_rpc '{"op":"stats"}' | grep -q "\"transactions\":$1," && return 0
        sleep 0.05
    done
    echo "daemon never published $1 transactions" >&2
    return 1
}
# Normalizes the generation counter out of a reply.
norm() { sed 's/"generation":[0-9]*/"generation":_/'; }
DIFF_QUERIES=('{"op":"stats"}' '{"op":"support","labeling":"gw","labels":[0,1]}')

serve_start "$DUR_LOG" --data-dir "$DUR_DIR" --fsync always
serve_rpc "$(ing_batch 101)" | grep -q '"accepted":4'
serve_rpc "$(ing_batch 111)" | grep -q '"accepted":4'
serve_rpc '{"op":"delete","ids":[103]}' | grep -q '"accepted":1'
exec 3<&- 3>&-
# The braces keep bash's asynchronous "Killed" job notice out of the log.
{ kill -9 "$SERVE_PID" && wait "$SERVE_PID"; } 2>/dev/null || true

# Restart on the same directory: recovery must replay the WAL.
serve_start "$DUR_LOG" --data-dir "$DUR_DIR" --fsync always
serve_await_txns 7     # 8 ingested - 1 deleted
REC_REPLIES=$(for q in "${DIFF_QUERIES[@]}"; do serve_rpc "$q" | norm; done)
serve_rpc '{"op":"shutdown"}' | grep -q '"ok":true'
exec 3<&- 3>&-
wait "$SERVE_PID"

# The control daemon never crashes and never touches a disk.
serve_start "$DUR_LOG.control"
serve_rpc "$(ing_batch 101)" | grep -q '"accepted":4'
serve_rpc "$(ing_batch 111)" | grep -q '"accepted":4'
serve_rpc '{"op":"delete","ids":[103]}' | grep -q '"accepted":1'
serve_await_txns 7
CTL_REPLIES=$(for q in "${DIFF_QUERIES[@]}"; do serve_rpc "$q" | norm; done)
serve_rpc '{"op":"shutdown"}' | grep -q '"ok":true'
exec 3<&- 3>&-
wait "$SERVE_PID"
diff <(printf '%s\n' "$REC_REPLIES") <(printf '%s\n' "$CTL_REPLIES")

echo "== durability smoke: corruption refused, torn tail recovered"
# Mid-log corruption (a flipped checksum in the FIRST record, with valid
# records after it) must refuse startup with exit 1 — never serve
# silently damaged data.
cp "$DUR_DIR/wal.log" /tmp/tnet_ci_wal.bak
printf '\xde\xad\xbe\xef' | \
    dd of="$DUR_DIR/wal.log" bs=1 seek=4 count=4 conv=notrunc 2>/dev/null
set +e
timeout 30 "$TNET" serve --data-dir "$DUR_DIR" --shutdown-on-stdin-eof false \
    < /dev/null > /dev/null 2> "$DUR_LOG.corrupt"
code=$?
set -e
test "$code" -eq 1
grep -q 'corrupt' "$DUR_LOG.corrupt"
# A torn tail (crash mid-write) is different: the partial record was
# never acknowledged, so recovery truncates it with a warning and
# serves everything before the tear. The tear here chops the final
# (delete) record, so all 8 ingested records come back.
cp /tmp/tnet_ci_wal.bak "$DUR_DIR/wal.log"
WAL_SIZE=$(wc -c < "$DUR_DIR/wal.log")
dd if=/tmp/tnet_ci_wal.bak of="$DUR_DIR/wal.log" \
    bs=1 count=$((WAL_SIZE - 5)) 2>/dev/null
serve_start "$DUR_LOG.torn" --data-dir "$DUR_DIR" --fsync always
serve_await_txns 8
serve_rpc '{"op":"shutdown"}' | grep -q '"ok":true'
exec 3<&- 3>&-
wait "$SERVE_PID"
grep -q 'torn byte' "$DUR_LOG.torn"
rm -rf "$DUR_DIR" /tmp/tnet_ci_wal.bak \
    "$DUR_LOG" "$DUR_LOG.control" "$DUR_LOG.corrupt" "$DUR_LOG.torn" \
    "$SERVE_PORT_FILE"

echo "== bench smoke: serve report emits valid JSON, gates pass"
# In-process daemon under a mixed read/ingest load plus the durability
# overhead pass; --validate re-parses the report and re-checks the
# cache/generation/error gates and the recovery gates (every
# acknowledged record recovered, zero checksum errors).
BENCH_SERVE_OUT=/tmp/tnet_ci_bench_serve.json
cargo run --release -q -p tnet-bench --offline --bin bench_serve -- \
    --smoke --out "$BENCH_SERVE_OUT"
cargo run --release -q -p tnet-bench --offline --bin bench_serve -- \
    --validate "$BENCH_SERVE_OUT"
rm -f "$BENCH_SERVE_OUT"

echo "ci.sh: all green"
