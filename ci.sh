#!/bin/bash
# Tier-1 gate: formatting, lints, and the offline build+test the paper
# reproduction is judged by. Runs with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace --offline
cargo test -q --workspace --offline

echo "ci.sh: all green"
