//! Full reproduction: runs every experiment (E1–E15) and prints one
//! combined report. The first CLI argument sets the dataset scale
//! (fraction of the paper's 98,292 transactions; default 0.05 — use
//! larger values for closer-to-paper numbers, at more runtime).
//!
//! ```text
//! cargo run --release --example full_reproduction -- 0.05
//! ```

use tnet_core::pipeline::Pipeline;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    eprintln!("generating dataset at scale {scale} and running E1..E15 ...");
    let pipeline = Pipeline::synthetic(scale, 42);
    let report = pipeline.full_report(scale, 42);
    println!("{report}");
}
