//! E1 — prints the §3 dataset-description statistics for the synthetic
//! dataset, side by side with the paper's published numbers. Run at
//! scale 1.0 to verify the full calibration:
//!
//! ```text
//! cargo run --release --example dataset_stats -- 1.0
//! ```

use tnet_core::pipeline::Pipeline;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    eprintln!("generating at scale {scale} ...");
    let pipeline = Pipeline::synthetic(scale, 42);
    let st = pipeline.dataset_stats();
    println!("--- measured (scale {scale}) ---");
    println!("{st}");
    println!("--- paper (Sec 3, scale 1.0) ---");
    println!("transactions:          98292");
    println!("distinct locations:    4038");
    println!("distinct origins:      1797");
    println!("distinct destinations: 3770");
    println!("distinct OD pairs:     20900");
    println!("out-degree:            min 1 max 2373 avg 12");
    println!("in-degree:             min 1 max 832 avg 6");
}
