//! Route discovery: the paper's §5 scenario end-to-end.
//!
//! Finds (a) hub-and-spoke delivery fans with breadth-first partitioning
//! on the transit-hours graph (Figure 2) and (b) repeated
//! pickup-and-deliver chain routes with depth-first partitioning on the
//! distance graph (Figure 3), then renders the best of each as Graphviz
//! DOT so they can be compared against the paper's figures.
//!
//! ```text
//! cargo run --release --example route_discovery
//! ```

use tnet_core::experiments::structural::run_shape_mining;
use tnet_core::patterns::{classify, PatternShape};
use tnet_core::pipeline::Pipeline;
use tnet_data::od_graph::EdgeLabeling;
use tnet_exec::Exec;
use tnet_partition::split::Strategy;

fn main() {
    let pipeline = Pipeline::synthetic(0.03, 42);
    let txns = pipeline.transactions();
    let exec = Exec::default();

    // Figure 2: breadth-first partitioning favours bushy patterns.
    let bf = run_shape_mining(
        txns,
        EdgeLabeling::TransitHours,
        Strategy::BreadthFirst,
        12,
        5,
        2,
        6,
        7,
        None,
        &exec,
    )
    .expect("BF shape mining fits the default budget");
    println!("{bf}");
    if let Some(best) = bf
        .patterns
        .iter()
        .find(|p| matches!(classify(&p.pattern), PatternShape::HubAndSpoke { .. }))
    {
        println!("best hub pattern as DOT:");
        println!("{}", tnet_graph::dot::to_dot(&best.pattern, "hub"));
    }

    // Figure 3: depth-first partitioning favours chains — routes that
    // pick up and deliver at each stop, keeping the truck utilized.
    let df = run_shape_mining(
        txns,
        EdgeLabeling::TotalDistance,
        Strategy::DepthFirst,
        12,
        4,
        2,
        6,
        7,
        None,
        &exec,
    )
    .expect("DF shape mining fits the default budget");
    println!("{df}");
    if let Some(best) = df
        .patterns
        .iter()
        .find(|p| matches!(classify(&p.pattern), PatternShape::Chain { edges } if edges >= 2))
    {
        println!("best chain pattern as DOT:");
        println!("{}", tnet_graph::dot::to_dot(&best.pattern, "route"));
    }
}
