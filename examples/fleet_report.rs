//! Fleet analytics: the paper's §7 conventional-mining story as one
//! report — association rules, mode classification, and EM clustering
//! with short-haul / long-haul / air-freight labeling.
//!
//! ```text
//! cargo run --release --example fleet_report
//! ```

use tnet_core::experiments::conventional::{run_assoc, run_classify, run_cluster};
use tnet_core::pipeline::Pipeline;
use tnet_exec::Exec;

fn main() {
    let pipeline = Pipeline::synthetic(0.05, 42);
    let txns = pipeline.transactions();

    println!("{}", run_assoc(txns, 12));
    println!("{}", run_classify(txns));
    let clusters =
        run_cluster(txns, 9, 60, 7, &Exec::default()).expect("EM clustering runs unbudgeted");
    println!("{clusters}");
}
