//! Quickstart: generate a transportation dataset, build the OD graph,
//! and mine frequent structural patterns in it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tnet_core::patterns::classify;
use tnet_core::pipeline::Pipeline;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine_for_algorithm1_with, FsgConfig, Support};
use tnet_partition::single_graph::mine_single_graph;
use tnet_partition::split::Strategy;

fn main() {
    // A 2% scale replica of the paper's six-month dataset.
    let pipeline = Pipeline::synthetic(0.02, 42);
    println!("--- dataset (Sec 3 statistics) ---");
    println!("{}", pipeline.dataset_stats());

    // The OD_GW graph: vertices = locations, edges = shipments labeled
    // by gross-weight bin. Uniform vertex labels = structural mining.
    let od = pipeline.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut graph = od.graph;
    graph.dedup_edges();
    println!("--- OD_GW graph ---");
    println!("{}", tnet_graph::stats::summarize(&graph));

    // Algorithm 1: partition the single graph into transactions
    // (breadth-first), mine with FSG, union results over 2 repetitions.
    let cfg = FsgConfig::default()
        .with_support(Support::Count(5))
        .with_max_edges(5);
    // The default pool honours TNET_THREADS and falls back to the
    // hardware thread count; results are identical at any size.
    let exec = Exec::default();
    let patterns = mine_single_graph(&graph, 12, 2, Strategy::BreadthFirst, 1, &exec, |t, e| {
        mine_for_algorithm1_with(t, &cfg, e)
    });

    println!("--- top frequent patterns ---");
    for p in patterns.iter().take(10) {
        println!(
            "support {:>5}  {} edges  shape: {}",
            p.support,
            p.pattern.edge_count(),
            classify(&p.pattern).name()
        );
    }
    println!("({} patterns total)", patterns.len());
}
