//! The tnet-exec contract: parallel output is byte-identical to
//! sequential output at every thread count, and a `MemoryBudget` abort
//! cancels the whole pool promptly.

use tnet_core::pipeline::Pipeline;
use tnet_core::to_table::transactions_to_table;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine, mine_for_algorithm1_with, mine_with, FsgConfig, FsgError, Support};
use tnet_graph::graph::Graph;
use tnet_graph::rng::StdRng;
use tnet_gspan::{mine_dfs, mine_dfs_with, GspanConfig};
use tnet_partition::single_graph::mine_single_graph;
use tnet_partition::split::{split_graph, Strategy};
use tnet_tabular::em::{fit, fit_with, EmConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn graph_transactions() -> Vec<Graph> {
    let p = Pipeline::synthetic(0.015, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let mut rng = StdRng::seed_from_u64(4);
    split_graph(&g, 10, Strategy::BreadthFirst, &mut rng)
}

#[test]
fn fsg_output_identical_at_any_thread_count() {
    let txns = graph_transactions();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4);
    let baseline = mine(&txns, &cfg).unwrap();
    let render = |out: &tnet_fsg::FsgOutput| -> String {
        out.patterns
            .iter()
            .map(|p| format!("{:?} support={} tids={:?}\n", p.graph, p.support, p.tids))
            .collect()
    };
    for threads in THREAD_COUNTS {
        let out = mine_with(&txns, &cfg, &Exec::new(threads)).unwrap();
        assert_eq!(
            render(&out),
            render(&baseline),
            "FSG output diverged at {threads} threads"
        );
        assert_eq!(out.stats.iso_tests, baseline.stats.iso_tests);
        assert_eq!(out.stats.closure_pruned, baseline.stats.closure_pruned);
    }
}

#[test]
fn gspan_output_identical_at_any_thread_count() {
    let txns = graph_transactions();
    let cfg = GspanConfig {
        min_support: Support::Count(4),
        max_edges: 4,
        ..Default::default()
    };
    let baseline = mine_dfs(&txns, &cfg).unwrap();
    let render = |out: &tnet_gspan::GspanOutput| -> String {
        out.patterns
            .iter()
            .map(|p| format!("{:?} support={} tids={:?}\n", p.graph, p.support, p.tids))
            .collect()
    };
    for threads in THREAD_COUNTS {
        let out = mine_dfs_with(&txns, &cfg, &Exec::new(threads)).unwrap();
        assert_eq!(
            render(&out),
            render(&baseline),
            "gSpan output diverged at {threads} threads"
        );
    }
}

/// The frozen-CSR snapshot is a pure representation change: every miner
/// must produce byte-identical output whether it traverses the arena
/// builder directly (`*_arena_with`) or the frozen TxnSet / FrozenGraph
/// (the `*_with` default). Patterns, supports, TID lists, instance ids,
/// and counters all have to line up.
#[test]
fn frozen_and_arena_miners_agree() {
    let txns = graph_transactions();
    let exec = Exec::sequential();

    let fsg_cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4);
    let render_fsg = |out: &tnet_fsg::FsgOutput| -> String {
        out.patterns
            .iter()
            .map(|p| format!("{:?} support={} tids={:?}\n", p.graph, p.support, p.tids))
            .collect()
    };
    let frozen = mine_with(&txns, &fsg_cfg, &exec).unwrap();
    let arena = tnet_fsg::mine_arena_with(&txns, &fsg_cfg, &exec).unwrap();
    assert_eq!(
        render_fsg(&frozen),
        render_fsg(&arena),
        "FSG frozen vs arena diverged"
    );
    assert_eq!(frozen.stats.iso_tests, arena.stats.iso_tests);

    let gspan_cfg = GspanConfig {
        min_support: Support::Count(4),
        max_edges: 4,
        ..Default::default()
    };
    let render_gspan = |out: &tnet_gspan::GspanOutput| -> String {
        out.patterns
            .iter()
            .map(|p| format!("{:?} support={} tids={:?}\n", p.graph, p.support, p.tids))
            .collect()
    };
    let gf = mine_dfs_with(&txns, &gspan_cfg, &exec).unwrap();
    let ga = tnet_gspan::mine_dfs_arena_with(&txns, &gspan_cfg, &exec).unwrap();
    assert_eq!(
        render_gspan(&gf),
        render_gspan(&ga),
        "gSpan frozen vs arena diverged"
    );

    // SUBDUE mines a single graph; instance ids must come back in the
    // caller's arena id space (discover_with remaps through the frozen
    // snapshot's orig maps).
    let p = Pipeline::synthetic(0.015, 42);
    let scheme = tnet_data::binning::BinScheme::fit_width_transactions(p.transactions()).unwrap();
    let g = tnet_core::experiments::structural::truncated_structural_graph(
        p.transactions(),
        &scheme,
        EdgeLabeling::GrossWeight,
        25,
    );
    let sub_cfg = tnet_subdue::SubdueConfig {
        max_size: 6,
        ..Default::default()
    };
    let render_sub = |out: &tnet_subdue::SubdueOutput| -> String {
        out.best
            .iter()
            .map(|s| {
                let inst: Vec<_> = s
                    .instances
                    .iter()
                    .map(|i| (i.vertices.clone(), i.edges.clone(), i.map.clone()))
                    .collect();
                format!("{:?} value={:.9} inst={inst:?}\n", s.pattern, s.value)
            })
            .collect()
    };
    let sf = tnet_subdue::discover_with(&g, &sub_cfg, &exec).unwrap();
    let sa = tnet_subdue::discover_arena_with(&g, &sub_cfg, &exec).unwrap();
    assert_eq!(
        render_sub(&sf),
        render_sub(&sa),
        "SUBDUE frozen vs arena diverged"
    );
}

#[test]
fn partition_mining_identical_at_any_thread_count() {
    let p = Pipeline::synthetic(0.012, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(3);
    let run = |threads: usize| -> String {
        mine_single_graph(
            &g,
            8,
            3,
            Strategy::BreadthFirst,
            7,
            &Exec::new(threads),
            |t, e| mine_for_algorithm1_with(t, &cfg, e),
        )
        .iter()
        .map(|p| {
            format!(
                "{:?} support={} reps={}\n",
                p.pattern, p.support, p.repetitions_seen
            )
        })
        .collect()
    };
    let baseline = run(1);
    assert!(!baseline.is_empty());
    for threads in THREAD_COUNTS {
        assert_eq!(
            run(threads),
            baseline,
            "partition mining diverged at {threads} threads"
        );
    }
}

#[test]
fn em_bitwise_identical_at_any_thread_count() {
    let p = Pipeline::synthetic(0.01, 42);
    let table = transactions_to_table(p.transactions());
    let cfg = EmConfig {
        clusters: 4,
        seed: 3,
        ..Default::default()
    };
    let baseline = fit(&table, &cfg).unwrap();
    // Float addition is non-associative, so bit equality here proves the
    // parallel E-step folds in exactly the sequential order.
    let bits = |m: &tnet_tabular::em::EmModel| {
        (
            m.log_likelihood.to_bits(),
            m.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            m.means
                .iter()
                .flatten()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            m.variances
                .iter()
                .flatten()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            m.assignments.clone(),
        )
    };
    for threads in THREAD_COUNTS {
        let out = fit_with(&table, &cfg, &Exec::new(threads)).unwrap();
        assert_eq!(
            bits(&out),
            bits(&baseline),
            "EM diverged at {threads} threads"
        );
    }
}

/// The report quotes wall-clock runtimes (E2's scaling table, the E5
/// sweep), which differ between *any* two runs. Everything else — every
/// pattern count, support, shape, and probability — must be identical,
/// so scrub duration tokens and compare the rest byte-for-byte.
fn scrub_durations(report: &str) -> String {
    report
        .lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    let t = tok.trim_matches(|c| c == '(' || c == ')');
                    let is_duration = ["ns", "\u{b5}s", "ms", "s"].iter().any(|unit| {
                        t.strip_suffix(unit)
                            .is_some_and(|num| num.parse::<f64>().is_ok())
                    });
                    if is_duration {
                        "[time]"
                    } else {
                        tok
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn full_report_identical_at_any_thread_count() {
    let p = Pipeline::synthetic(0.008, 42);
    let baseline = scrub_durations(&p.full_report_with(0.008, 42, &Exec::sequential()));
    let parallel = scrub_durations(&p.full_report_with(0.008, 42, &Exec::new(4)));
    assert_eq!(baseline, parallel, "report text must not depend on threads");
}

#[test]
fn memory_budget_abort_cancels_the_pool() {
    // Unfiltered temporal-style transactions with a tiny budget: FSG must
    // abort, and the abort must cancel the Exec handle it ran on so
    // sibling work sharing that token stops claiming items.
    let txns = graph_transactions();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(2))
        .with_max_edges(6)
        .with_memory_budget(4 * 1024);
    let exec = Exec::new(2);
    let miner = exec.child();
    let err = mine_with(&txns, &cfg, &miner).unwrap_err();
    assert!(
        matches!(err, FsgError::MemoryBudgetExceeded { .. }),
        "expected a budget abort, got {err:?}"
    );
    assert!(miner.is_cancelled(), "abort must cancel the miner's handle");
    assert!(
        !exec.is_cancelled(),
        "a child abort must not wedge the parent pool"
    );

    // The cancelled handle refuses further mining work immediately.
    let retry = mine_with(&txns, &FsgConfig::default(), &miner).unwrap_err();
    assert!(matches!(retry, FsgError::Cancelled), "got {retry:?}");

    // And its try_par_map stops claiming: no item runs after cancellation.
    let items: Vec<u32> = (0..1000).collect();
    assert!(miner.try_par_map(&items, |&x| x * 2).is_err());

    // The parent pool is still fully usable.
    let doubled = exec.try_par_map(&items, |&x| x * 2).unwrap();
    assert_eq!(doubled[999], 1998);
}

/// The E5 acceptance check: the partition sweep at 4 threads must be at
/// least ~2x faster than sequential. Meaningless on boxes without the
/// hardware, so it self-skips below 4 available threads (CI machines
/// assert; a laptop running the suite under load is not a referee).
#[test]
fn partition_sweep_speedup_at_four_threads() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 4 {
        eprintln!("skipping speedup check: only {hw} hardware threads");
        return;
    }
    let p = Pipeline::synthetic(0.02, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(3))
        .with_max_edges(5);
    let sweep = |exec: &Exec| {
        for k in [6usize, 12, 18, 24] {
            mine_single_graph(&g, k, 2, Strategy::BreadthFirst, 1, exec, |t, e| {
                mine_for_algorithm1_with(t, &cfg, e)
            });
        }
    };
    let time = |exec: &Exec| {
        let start = std::time::Instant::now();
        sweep(exec);
        start.elapsed()
    };
    sweep(&Exec::sequential()); // warm-up
    let seq = time(&Exec::sequential());
    let par = time(&Exec::new(4));
    assert!(
        par.as_secs_f64() * 2.0 <= seq.as_secs_f64(),
        "expected >=2x speedup at 4 threads: sequential {seq:?}, parallel {par:?}"
    );
}
