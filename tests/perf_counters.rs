//! Perf-counter regression gates for propagated support counting.
//!
//! The bench harness (`cargo run --release -p tnet-bench --bin
//! bench_miners`) reports wall-clock, but wall-clock is too noisy to
//! gate CI on. These tests pin the *deterministic* counters on the bench
//! suite's default workload instead: if a change reintroduces scratch
//! VF2 searches where propagation should serve, `iso_tests` jumps well
//! past the gate and this fails long before anyone reads a timing chart.

use tnet_core::pipeline::Pipeline;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::graph::Graph;
use tnet_graph::rng::StdRng;
use tnet_gspan::{mine_dfs, GspanConfig};
use tnet_partition::split::{split_graph, Strategy};

/// Matches `FSG_DEFAULT_ISO_GATE` in the bench_miners binary: the
/// scratch-VF2 count on this workload is 579, propagation measures 20,
/// and the gate sits at the 5x-drop mark the optimization promises.
const ISO_GATE: usize = 116;

/// The bench suite's default workload: synthetic OD graph, deduped,
/// split into 10 breadth-first transactions. Seeds are fixed so the
/// counters below are exact, not statistical.
fn default_workload() -> Vec<Graph> {
    let p = Pipeline::synthetic(0.015, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let mut rng = StdRng::seed_from_u64(4);
    split_graph(&g, 10, Strategy::BreadthFirst, &mut rng)
}

fn fsg_cfg(cap: usize) -> FsgConfig {
    FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4)
        .with_embedding_cap(cap)
}

#[test]
fn fsg_iso_tests_stay_under_gate() {
    let txns = default_workload();
    let out = mine(&txns, &fsg_cfg(FsgConfig::default().embedding_cap)).unwrap();
    assert_eq!(
        out.patterns.len(),
        62,
        "workload drifted — re-derive the gate"
    );
    assert!(
        out.stats.iso_tests <= ISO_GATE,
        "iso_tests regressed: {} > {} (scratch counts ~579 here)",
        out.stats.iso_tests,
        ISO_GATE
    );
    assert!(
        out.stats.embeddings_extended > 0,
        "propagation did no work — support counting fell back to scratch"
    );
}

#[test]
fn fsg_propagated_matches_scratch() {
    let txns = default_workload();
    let scratch = mine(&txns, &fsg_cfg(0)).unwrap();
    // 256 is the default cap; 2 forces the truncation/spill path on
    // nearly every pattern, exercising inexact-seed re-verification.
    for cap in [256usize, 2] {
        let prop = mine(&txns, &fsg_cfg(cap)).unwrap();
        assert_eq!(prop.patterns.len(), scratch.patterns.len(), "cap {cap}");
        for (a, b) in prop.patterns.iter().zip(&scratch.patterns) {
            assert_eq!(a.tids, b.tids, "cap {cap}");
            assert_eq!(a.support, b.support, "cap {cap}");
            assert!(
                tnet_graph::iso::are_isomorphic(&a.graph, &b.graph),
                "cap {cap}: pattern mismatch"
            );
        }
    }
    let tiny = mine(&txns, &fsg_cfg(2)).unwrap();
    assert!(
        tiny.stats.embeddings_spilled > 0,
        "cap 2 should overflow some embedding lists"
    );
}

#[test]
fn gspan_propagated_matches_scratch() {
    let txns = default_workload();
    let cfg = |cap: usize| GspanConfig {
        min_support: Support::Count(4),
        max_edges: 4,
        embedding_cap: cap,
        ..Default::default()
    };
    let scratch = mine_dfs(&txns, &cfg(0)).unwrap();
    for cap in [256usize, 2] {
        let prop = mine_dfs(&txns, &cfg(cap)).unwrap();
        assert_eq!(prop.patterns.len(), scratch.patterns.len(), "cap {cap}");
        for (a, b) in prop.patterns.iter().zip(&scratch.patterns) {
            assert_eq!(a.tids, b.tids, "cap {cap}");
            assert!(
                tnet_graph::iso::are_isomorphic(&a.graph, &b.graph),
                "cap {cap}: pattern mismatch"
            );
        }
    }
    // Both miners agree on the workload's pattern count.
    assert_eq!(scratch.patterns.len(), 62);
}
