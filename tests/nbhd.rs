//! Differential suite for the r-hop neighborhood miner: byte-identical
//! output at every thread count, and agreement with partition+FSG on
//! workloads where the two support definitions provably coincide (the
//! radius covers each component, so a center's neighborhood is exactly
//! its component).

use tnet_core::pipeline::Pipeline;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine, mine_neighborhoods, FsgConfig, NbhdConfig, NbhdOutput, Support};
use tnet_graph::generate::shapes;
use tnet_graph::graph::Graph;
use tnet_graph::iso::are_isomorphic;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn od_graph() -> Graph {
    let p = Pipeline::synthetic(0.015, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    g
}

fn render(out: &NbhdOutput) -> String {
    out.patterns
        .iter()
        .map(|p| {
            format!(
                "{:?} support={} centers={:?}\n",
                p.graph, p.support, p.centers
            )
        })
        .collect()
}

#[test]
fn neighborhood_output_identical_at_any_thread_count() {
    let g = od_graph();
    let cfg = NbhdConfig::default()
        .with_radius(1)
        .with_support(Support::Count(3))
        .with_max_edges(3);
    let baseline = mine_neighborhoods(&g, &cfg, &Exec::new(1)).unwrap();
    assert!(
        !baseline.patterns.is_empty(),
        "calibrated OD graph must yield neighborhood patterns"
    );
    for threads in THREAD_COUNTS {
        let out = mine_neighborhoods(&g, &cfg, &Exec::new(threads)).unwrap();
        assert_eq!(
            render(&out),
            render(&baseline),
            "neighborhood output diverged at {threads} threads"
        );
        // The counters are folded in candidate order, so they are
        // scheduling-independent too.
        assert_eq!(out.stats.iso_tests, baseline.stats.iso_tests);
        assert_eq!(
            out.stats.fingerprint_rejects,
            baseline.stats.fingerprint_rejects
        );
        assert_eq!(
            out.stats.candidates_per_level,
            baseline.stats.candidates_per_level
        );
        assert_eq!(
            out.stats.frequent_per_level,
            baseline.stats.frequent_per_level
        );
    }
}

#[test]
fn radius_two_is_deterministic_across_threads() {
    let g = od_graph();
    let cfg = NbhdConfig::default()
        .with_radius(2)
        .with_support(Support::Count(5))
        .with_max_edges(2);
    let baseline = mine_neighborhoods(&g, &cfg, &Exec::new(1)).unwrap();
    for threads in THREAD_COUNTS {
        let out = mine_neighborhoods(&g, &cfg, &Exec::new(threads)).unwrap();
        assert_eq!(
            render(&out),
            render(&baseline),
            "radius-2 output diverged at {threads} threads"
        );
    }
}

/// Disjoint union of labeled components, vertices renumbered densely.
fn union_of(components: &[Graph]) -> Graph {
    let mut g = Graph::new();
    for c in components {
        let mut map = std::collections::HashMap::new();
        for v in c.vertices() {
            map.insert(v, g.add_vertex(c.vertex_label(v)));
        }
        for e in c.edges() {
            let (s, d, l) = c.edge(e);
            g.add_edge(map[&s], map[&d], l);
        }
    }
    g
}

/// Where the support definitions provably coincide: the graph is a
/// disjoint union of components with the SAME vertex count `s`, and the
/// radius covers every component (each center's r-hop neighborhood is
/// exactly its component). Then a pattern's neighborhood support is
/// `s ×` its FSG transaction support over the components-as-transactions
/// workload, so the frequent sets agree at
/// `min_support_nbhd = s × min_support_fsg`.
#[test]
fn agreement_with_fsg_when_radius_covers_each_component() {
    // Five components, 4 vertices each: three 4-cycles, two 3-chains.
    let cycle = shapes::cycle(4, 0, 1);
    let chain = shapes::chain(3, 0, 2);
    let components = vec![
        cycle.clone(),
        cycle.clone(),
        cycle.clone(),
        chain.clone(),
        chain.clone(),
    ];
    let vertices_per_component = 4;
    let fsg_support = 2;

    let fsg_out = mine(
        &components,
        &FsgConfig::default()
            .with_support(Support::Count(fsg_support))
            .with_max_edges(4),
    )
    .unwrap();

    let g = union_of(&components);
    let nbhd_out = mine_neighborhoods(
        &g,
        &NbhdConfig::default()
            .with_radius(4) // ≥ every component's undirected diameter
            .with_support(Support::Count(vertices_per_component * fsg_support))
            .with_max_edges(4),
        &Exec::new(2),
    )
    .unwrap();

    assert!(!fsg_out.patterns.is_empty());
    assert_eq!(
        fsg_out.patterns.len(),
        nbhd_out.patterns.len(),
        "frequent sets must coincide:\nfsg: {:?}\nnbhd: {:?}",
        fsg_out
            .patterns
            .iter()
            .map(|p| (p.graph.edge_count(), p.support))
            .collect::<Vec<_>>(),
        nbhd_out
            .patterns
            .iter()
            .map(|p| (p.graph.edge_count(), p.support))
            .collect::<Vec<_>>(),
    );
    for fp in &fsg_out.patterns {
        let np = nbhd_out
            .patterns
            .iter()
            .find(|np| are_isomorphic(&np.graph, &fp.graph))
            .unwrap_or_else(|| panic!("FSG pattern missing from neighborhood set: {:?}", fp.graph));
        assert_eq!(
            np.support,
            vertices_per_component * fp.support,
            "support scaling violated for {:?}",
            fp.graph
        );
    }
}
