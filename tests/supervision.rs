//! The supervised-pipeline contract: under any armed failpoint the full
//! report still completes — failed sections render a notice, retryable
//! aborts trigger one degraded retry, and the end-of-report summary
//! always appears. Unarmed, the report stays byte-deterministic across
//! thread counts.

use std::sync::Mutex;
use std::time::Duration;
use tnet_core::pipeline::Pipeline;
use tnet_core::supervisor::{run_section, SectionCtx, SectionStatus, SupervisorConfig};
use tnet_core::Effort;
use tnet_exec::failpoint;
use tnet_exec::Exec;
use tnet_graph::graph::{ELabel, Graph, VLabel};
use tnet_subdue::{discover_with, SubdueConfig};

/// Failpoint state is process-global: every test that arms (or must
/// observe an unarmed registry) serializes on this lock and disarms via
/// the guard, even when an assertion fails mid-test.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

struct ArmGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> ArmGuard<'a> {
    fn arm(spec: &str) -> ArmGuard<'a> {
        let guard = FAILPOINT_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        failpoint::disarm();
        failpoint::arm(spec).expect("valid failpoint spec");
        ArmGuard(guard)
    }

    fn unarmed() -> ArmGuard<'a> {
        let guard = FAILPOINT_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        failpoint::disarm();
        ArmGuard(guard)
    }
}

impl Drop for ArmGuard<'_> {
    fn drop(&mut self) {
        failpoint::disarm();
    }
}

const SCALE: f64 = 0.008;
const SECTIONS: usize = 13;

fn report_pipeline() -> Pipeline {
    Pipeline::synthetic(SCALE, 42)
}

/// Durations in the report (E2/E3 runtimes, sweep times) differ between
/// any two runs; scrub them before comparing text.
fn scrub_durations(report: &str) -> String {
    report
        .lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    let t = tok.trim_matches(|c| c == '(' || c == ')');
                    let is_duration = ["ns", "\u{b5}s", "ms", "s"].iter().any(|unit| {
                        t.strip_suffix(unit)
                            .is_some_and(|num| num.parse::<f64>().is_ok())
                    });
                    if is_duration {
                        "[time]"
                    } else {
                        tok
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn injected_error_fails_one_section_and_the_rest_complete() {
    let _g = ArmGuard::arm("em::iteration=err");
    let p = report_pipeline();
    let out = p.full_report_supervised(SCALE, 42, &Exec::new(4), &SupervisorConfig::default());
    assert_eq!(out.failed, 1, "only the EM section hits em::iteration");
    assert_eq!(out.degraded, 0, "an injected fault is not retryable");
    assert_eq!(out.ok, SECTIONS - 1);
    assert!(
        out.text
            .contains("!! section failed: em: injected fault at failpoint `em::iteration`"),
        "missing failure notice:\n{}",
        out.text
    );
    assert!(out.text.contains("=== E14/15: EM clustering ==="));
    assert!(out.text.contains("=== E12: association rules"));
    assert!(
        out.text
            .ends_with("sections: 12 ok, 0 degraded, 1 failed\n"),
        "missing summary line:\n{}",
        out.text
    );
}

#[test]
fn injected_panic_is_isolated_to_the_subdue_sections() {
    let _g = ArmGuard::arm("subdue::beam_eval=panic");
    let p = report_pipeline();
    let out = p.full_report_supervised(SCALE, 42, &Exec::new(4), &SupervisorConfig::default());
    // E2, E3, and E4 run the beam search; nothing else does.
    assert_eq!(out.failed, 3, "summary: {}", out.text);
    assert_eq!(out.ok, SECTIONS - 3);
    assert!(
        out.text
            .contains("panicked: injected panic at failpoint `subdue::beam_eval`"),
        "missing panic notice:\n{}",
        out.text
    );
    // The panic did not take the report down: later sections rendered.
    assert!(out.text.contains("=== E13: classification"));
    assert!(out.text.contains("sections: 10 ok, 0 degraded, 3 failed\n"));
}

/// Regression for the metrics registry after a caught panic: later
/// sections' counter flushes (`record_into` → `MetricsRegistry::add`)
/// must keep working, and the registry must stay readable, even though
/// a supervised section panicked mid-run. With a poison-propagating
/// registry this test dies in the first post-panic flush.
#[test]
fn counter_flushes_survive_a_panicked_section() {
    let _g = ArmGuard::arm("subdue::beam_eval=panic");
    let p = report_pipeline();
    let exec = Exec::new(4);
    let out = p.full_report_supervised(SCALE, 42, &exec, &SupervisorConfig::default());
    assert_eq!(out.failed, 3, "summary: {}", out.text);
    // Sections after the panicking ones flushed their counters: the
    // miners that ran post-panic recorded work into the shared registry.
    let snap = exec.metrics().snapshot();
    assert!(
        snap.keys().any(|k| k.starts_with("fsg.")),
        "post-panic FSG sections flushed no counters: {snap:?}"
    );
    // And the registry still accepts writes and reads.
    exec.metrics().add("test.after_panic", 1);
    assert_eq!(exec.metrics().get("test.after_panic"), 1);
}

#[test]
fn injected_fsg_error_fails_the_temporal_section() {
    let _g = ArmGuard::arm("fsg::candidate_gen=err");
    let p = report_pipeline();
    let out = p.full_report_supervised(SCALE, 42, &Exec::new(4), &SupervisorConfig::default());
    // Only the sections that propagate FSG errors fail: the §6 temporal
    // chain and the E16 windowed sessions (Algorithm 1's partition
    // runners treat a failed partition as yielding nothing).
    assert_eq!(out.failed, 2, "summary: {}", out.text);
    assert!(
        out.text
            .contains("injected fault at failpoint `fsg::candidate_gen`"),
        "missing fault notice:\n{}",
        out.text
    );
    assert!(out
        .text
        .contains("=== E9-E11: temporal partitioning and filtered mining ==="));
    assert!(out
        .text
        .contains("=== E16: temporal windows and flow patterns ==="));
}

#[test]
fn delay_fault_past_deadline_fails_with_deadline_error() {
    let _g = ArmGuard::arm("em::iteration=delay:700");
    let p = report_pipeline();
    let cfg = SupervisorConfig {
        section_deadline: Some(Duration::from_millis(300)),
        section_budget: None,
    };
    let out = p.full_report_supervised(SCALE, 42, &Exec::new(4), &cfg);
    // The injected delay guarantees the EM section blows its deadline
    // (other slow sections may too; that is the deadline working).
    assert!(out.failed >= 1, "summary: {}", out.text);
    assert!(
        out.text
            .contains("section `E14/15: EM clustering` exceeded its 300ms deadline"),
        "missing deadline notice:\n{}",
        out.text
    );
    assert!(out.ok >= 1, "fast sections still complete: {}", out.text);
    assert!(out.text.contains("\nsections: "), "summary line missing");
}

#[test]
fn budget_abort_triggers_degraded_retry() {
    let _g = ArmGuard::unarmed();
    // A graph the 2 KiB budget cannot hold...
    let mut big = Graph::new();
    for _ in 0..40 {
        let a = big.add_vertex(VLabel(0));
        let b = big.add_vertex(VLabel(0));
        big.add_edge(a, b, ELabel(0));
    }
    // ...and one it trivially can.
    let mut small = Graph::new();
    let a = small.add_vertex(VLabel(0));
    let b = small.add_vertex(VLabel(1));
    small.add_edge(a, b, ELabel(0));

    let exec = Exec::new(2);
    let cfg = SupervisorConfig {
        section_deadline: None,
        section_budget: Some(2_048),
    };
    let out = run_section("subdue budgeted", &cfg, &exec, 1, &|ctx: &SectionCtx| {
        let g = match ctx.effort {
            Effort::Normal => &big,
            Effort::Degraded => &small,
        };
        let sub_cfg = SubdueConfig {
            memory_budget: ctx.budget,
            ..Default::default()
        };
        let found = discover_with(g, &sub_cfg, ctx.exec)?;
        Ok(format!("best substructures: {}\n", found.best.len()))
    });
    assert_eq!(out.status, SectionStatus::Degraded, "text: {}", out.text);
    assert!(
        out.text
            .contains("!! degraded: `subdue budgeted` retried at reduced effort after:"),
        "missing degraded notice:\n{}",
        out.text
    );
    assert!(out.text.contains("budget is 2048"), "{}", out.text);
    assert!(out.text.contains("best substructures:"), "{}", out.text);
}

#[test]
fn nan_csv_fails_one_section_and_the_report_completes() {
    let _g = ArmGuard::unarmed();
    // A section whose input is a NaN-bearing CSV: ingest rejects it with
    // a typed error carrying the 1-based line number — never a panic —
    // and supervision turns that into one failed section while the rest
    // of the report keeps running.
    let csv = format!(
        "{}\n1,0,1,44.5,-88.0,41.9,-87.6,200,NaN,8,TL\n",
        tnet_data::csv::HEADER
    );
    let exec = Exec::new(2);
    let cfg = SupervisorConfig::default();
    let bad = run_section("nan ingest", &cfg, &exec, 1, &|_: &SectionCtx| {
        let txns = tnet_data::csv::read_csv(csv.as_bytes())?;
        Ok(format!("{} transactions\n", txns.len()))
    });
    assert_eq!(bad.status, SectionStatus::Failed, "text: {}", bad.text);
    assert!(bad.text.contains("!! section failed"), "{}", bad.text);
    assert!(
        bad.text.contains("line 2"),
        "line number lost: {}",
        bad.text
    );
    assert!(bad.text.contains("non-finite"), "{}", bad.text);
    // A malformed-data failure is not retryable: no degraded retry ran.
    assert!(!bad.text.contains("degraded"), "{}", bad.text);
    // The report around it is unaffected.
    let ok = run_section("healthy", &cfg, &exec, 1, &|_: &SectionCtx| {
        Ok("fine\n".to_string())
    });
    assert_eq!(ok.status, SectionStatus::Ok);
}

#[test]
fn csv_ingest_failpoint_rejects_with_line_number() {
    let _g = ArmGuard::arm("csv::ingest=err");
    let mut buf = Vec::new();
    buf.extend_from_slice(tnet_data::csv::HEADER.as_bytes());
    buf.extend_from_slice(b"\n1,0,1,44.5,-88.0,41.9,-87.6,200,30000,8,TL\n");
    let err = tnet_data::csv::read_csv(buf.as_slice()).unwrap_err();
    assert_eq!(err.line, 1, "fault fires on the first read line");
    assert!(
        err.message
            .contains("injected fault at failpoint `csv::ingest`"),
        "{}",
        err.message
    );
    failpoint::disarm();
    assert_eq!(tnet_data::csv::read_csv(buf.as_slice()).unwrap().len(), 1);
}

#[test]
fn unarmed_report_is_byte_identical_at_1_2_8_threads() {
    let _g = ArmGuard::unarmed();
    let p = report_pipeline();
    let outcome = p.full_report_supervised(SCALE, 42, &Exec::new(1), &SupervisorConfig::default());
    assert_eq!(
        (outcome.ok, outcome.degraded, outcome.failed),
        (SECTIONS, 0, 0)
    );
    assert!(outcome
        .text
        .ends_with("sections: 13 ok, 0 degraded, 0 failed\n"));
    let baseline = scrub_durations(&outcome.text);
    for threads in [2usize, 8] {
        let run =
            p.full_report_supervised(SCALE, 42, &Exec::new(threads), &SupervisorConfig::default());
        assert_eq!(
            scrub_durations(&run.text),
            baseline,
            "report diverged at {threads} threads"
        );
    }
}
