//! Tracing integration: a supervised report run under a live tracer
//! yields a span tree with one node per section, registered in report
//! order regardless of thread count, with every section's wall clock
//! nested inside the root total — and a metrics registry that absorbed
//! the counters of every layer that ran (exec pool, FSG, SUBDUE).

use tnet_core::pipeline::Pipeline;
use tnet_core::supervisor::SupervisorConfig;
use tnet_exec::{Exec, MetricsRegistry, SpanNode, Tracer};

const SCALE: f64 = 0.008;

fn traced_report(threads: usize) -> (SpanNode, MetricsRegistry) {
    let tracer = Tracer::new("report");
    let registry = MetricsRegistry::new();
    let exec = Exec::new(threads).with_obs(tracer.root(), registry.clone());
    let p = Pipeline::synthetic(SCALE, 42);
    let outcome = {
        let _total = exec.span().timer();
        p.full_report_supervised(SCALE, 42, &exec, &SupervisorConfig::default())
    };
    assert_eq!(outcome.failed, 0, "healthy run: {}", outcome.text);
    exec.counters().record_into(&registry);
    (tracer.snapshot(), registry)
}

#[test]
fn sections_appear_in_report_order_and_nest_inside_the_total() {
    let (snap, registry) = traced_report(4);
    let labels: Vec<&str> = snap.children.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(
        labels.first(),
        Some(&"E1: dataset description"),
        "{labels:?}"
    );
    assert!(
        labels.contains(&"E14/15: EM clustering"),
        "missing the last section: {labels:?}"
    );
    assert!(snap.nanos > 0, "root timer recorded the total wall");
    for section in &snap.children {
        assert!(
            section.nanos <= snap.nanos,
            "section `{}` ({} ns) outlasted the whole run ({} ns)",
            section.label,
            section.nanos,
            snap.nanos
        );
        assert_eq!(section.count, 1, "`{}` ran once, no retries", section.label);
    }
    // One registry spans every layer that ran.
    for counter in ["exec.tasks", "fsg.iso_tests", "subdue.embeddings_extended"] {
        assert!(registry.get(counter) > 0, "{counter} never recorded");
    }
}

#[test]
fn span_tree_order_is_identical_across_thread_counts() {
    fn label_tree(n: &SpanNode, out: &mut Vec<String>, depth: usize) {
        out.push(format!("{}{}", "  ".repeat(depth), n.label));
        for c in &n.children {
            label_tree(c, out, depth + 1);
        }
    }
    let mut baseline = Vec::new();
    label_tree(&traced_report(1).0, &mut baseline, 0);
    for threads in [2usize, 8] {
        let mut run = Vec::new();
        label_tree(&traced_report(threads).0, &mut run, 0);
        assert_eq!(run, baseline, "span tree diverged at {threads} threads");
    }
}
