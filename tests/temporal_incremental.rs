//! Differential suite for incremental mining sessions (DESIGN.md §16).
//!
//! The byte-identity bar: a `MineSession` driven over tumbling and
//! sliding windows at every granularity must produce exactly what full
//! per-window re-mining produces — same patterns, same supports, same
//! TID lists, same order — at any thread count. The incremental path
//! shares the stateless miner's candidate generation and only changes
//! how support sets are computed, so any divergence here is a counting
//! bug, not a tolerance question.

use tnet_data::binning::BinScheme;
use tnet_data::{generate, SynthConfig};
use tnet_exec::Exec;
use tnet_fsg::{FsgConfig, Support};
use tnet_graph::canon::invariant_hash;
use tnet_partition::{Granularity, TemporalOptions, WindowSpec};
use tnet_temporal::{run_windows, TemporalConfig, TemporalRun};

fn dataset() -> Vec<tnet_data::Transaction> {
    generate(&SynthConfig::scaled(0.01)).transactions
}

fn fsg_cfg() -> FsgConfig {
    FsgConfig::default()
        .with_support(Support::Count(3))
        .with_max_edges(2)
}

/// Deterministic render of every window's full pattern output: iso
/// invariant hash, vertex/edge counts, support, and the exact TID list,
/// in mined order. Two runs are byte-identical iff these strings match.
fn render(run: &TemporalRun) -> String {
    let mut out = String::new();
    for w in &run.windows {
        out.push_str(&format!(
            "window [{}, {}) txns [{}, {})\n",
            w.unit_lo, w.unit_hi, w.txn_lo, w.txn_hi
        ));
        for p in &w.output.patterns {
            out.push_str(&format!(
                "  {:016x} v{} e{} support {} tids {:?}\n",
                invariant_hash(&p.graph),
                p.graph.vertex_count(),
                p.graph.edge_count(),
                p.support,
                p.tids
            ));
        }
    }
    out
}

fn run(
    txns: &[tnet_data::Transaction],
    spec: WindowSpec,
    incremental: bool,
    exec: &Exec,
) -> TemporalRun {
    let cfg = TemporalConfig::new(spec)
        .with_fsg(fsg_cfg())
        .with_incremental(incremental);
    run_windows(
        txns,
        &BinScheme::paper_defaults(),
        &TemporalOptions::default(),
        &cfg,
        exec,
    )
    .unwrap()
}

fn specs() -> Vec<(&'static str, WindowSpec, bool)> {
    // (name, spec, sliding): sliding specs must actually exercise the
    // delta path; tumbling specs must all fall back to full re-counts.
    vec![
        (
            "tumbling hour",
            WindowSpec::tumbling(Granularity::Hour, 24).unwrap(),
            false,
        ),
        (
            "sliding hour",
            WindowSpec::new(Granularity::Hour, 48, 24).unwrap(),
            true,
        ),
        (
            "tumbling day",
            WindowSpec::tumbling(Granularity::Day, 7).unwrap(),
            false,
        ),
        (
            "sliding day",
            WindowSpec::new(Granularity::Day, 7, 2).unwrap(),
            true,
        ),
        (
            "tumbling week",
            WindowSpec::tumbling(Granularity::Week, 2).unwrap(),
            false,
        ),
        (
            "sliding week",
            WindowSpec::new(Granularity::Week, 2, 1).unwrap(),
            true,
        ),
    ]
}

#[test]
fn incremental_equals_full_at_every_granularity() {
    let txns = dataset();
    let exec = Exec::new(2);
    for (name, spec, sliding) in specs() {
        let inc = run(&txns, spec, true, &exec);
        let full = run(&txns, spec, false, &exec);
        assert_eq!(
            render(&inc),
            render(&full),
            "{name}: incremental output diverged from full re-mining"
        );
        // The full run never takes the delta path...
        assert_eq!(full.session.incremental_windows, 0, "{name}");
        assert_eq!(full.session.full_recounts, full.windows.len(), "{name}");
        // ...and the sliding specs genuinely exercise it.
        if sliding {
            assert!(
                inc.session.incremental_windows > 0,
                "{name}: sliding windows never hit the delta path"
            );
        } else {
            assert_eq!(
                inc.session.incremental_windows, 0,
                "{name}: tumbling windows share no transactions"
            );
        }
    }
}

#[test]
fn incremental_output_is_thread_invariant() {
    let txns = dataset();
    let spec = WindowSpec::new(Granularity::Day, 7, 2).unwrap();
    let baseline = render(&run(&txns, spec, true, &Exec::new(1)));
    for threads in [2usize, 8] {
        let r = run(&txns, spec, true, &Exec::new(threads));
        assert_eq!(
            render(&r),
            baseline,
            "incremental output diverged at {threads} threads"
        );
    }
    // Full re-mining at 8 threads lands on the same bytes too.
    assert_eq!(render(&run(&txns, spec, false, &Exec::new(8))), baseline);
}
