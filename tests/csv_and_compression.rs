//! Integration: CSV persistence round-trips through the pipeline, and
//! SUBDUE's hierarchical compression interoperates with graphs built
//! from real(istic) transaction data.

use tnet_core::pipeline::Pipeline;
use tnet_data::csv::{read_csv, write_csv};
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_subdue::{hierarchical, EvalMethod, SubdueConfig};

#[test]
fn csv_roundtrip_preserves_pipeline_results() {
    let p = Pipeline::synthetic(0.01, 42);
    let mut buf = Vec::new();
    write_csv(p.transactions(), &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    assert_eq!(back.len(), p.transactions().len());
    let p2 = Pipeline::from_transactions(back).unwrap();
    let (a, b) = (p.dataset_stats(), p2.dataset_stats());
    assert_eq!(a.distinct_locations, b.distinct_locations);
    assert_eq!(a.distinct_od_pairs, b.distinct_od_pairs);
    assert_eq!(a.out_degree, b.out_degree);
    // Graphs built from both ends match in size.
    let g1 = p.od_graph(EdgeLabeling::TotalDistance, VertexLabeling::ByLocation);
    let g2 = p2.od_graph(EdgeLabeling::TotalDistance, VertexLabeling::ByLocation);
    assert_eq!(g1.graph.edge_count(), g2.graph.edge_count());
    assert_eq!(g1.graph.vertex_count(), g2.graph.vertex_count());
}

#[test]
fn hierarchical_compression_on_od_graph() {
    let p = Pipeline::synthetic(0.01, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = SubdueConfig {
        eval: EvalMethod::Size,
        beam_width: 4,
        max_best: 2,
        max_size: 5,
        ..Default::default()
    };
    let levels = hierarchical(&g, &cfg, 3).unwrap();
    assert!(!levels.is_empty(), "OD graphs should compress");
    let mut prev = g.size();
    for level in &levels {
        assert!(level.compressed_size < prev, "each pass must shrink");
        prev = level.compressed_size;
        assert!(level.substructure.value > 1.0);
    }
}
