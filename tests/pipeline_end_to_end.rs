//! End-to-end integration: dataset → OD graphs → both miners → shapes.
//! Spans tnet-data, tnet-graph, tnet-partition, tnet-fsg, tnet-subdue,
//! and tnet-core.

use tnet_core::patterns::{classify, PatternShape};
use tnet_core::pipeline::Pipeline;
use tnet_data::od_graph::{EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine_for_algorithm1_with, FsgConfig, Support};
use tnet_graph::iso::has_embedding;
use tnet_partition::single_graph::mine_single_graph;
use tnet_partition::split::Strategy;
use tnet_subdue::{discover, EvalMethod, SubdueConfig};

#[test]
fn dataset_statistics_track_config() {
    let p = Pipeline::synthetic(0.02, 42);
    let st = p.dataset_stats();
    // The scaled generator preserves the paper's structural ratios.
    assert_eq!(st.transactions, p.transactions().len());
    assert!(st.distinct_origins < st.distinct_destinations);
    assert!(st.both_roles > 0, "some locations play both roles");
    // (The paper's exact min-degree of 1 emerges at full scale; reduced
    // scale guarantees only the ordering.)
    assert!(st.out_degree.0 as f64 <= st.out_degree.2);
    assert!(st.in_degree.0 as f64 <= st.in_degree.2);
    // Full scale: max 2373 vs mean 12 (ratio ~200). The scaled mega hub
    // keeps a clear multiple of the mean.
    assert!(
        st.out_degree.1 as f64 > st.out_degree.2 * 3.0,
        "mega-hub skew: max {} vs mean {}",
        st.out_degree.1,
        st.out_degree.2
    );
    assert!(st.distinct_od_pairs < st.transactions, "repeat deliveries");
}

#[test]
fn od_graphs_share_structure_and_differ_in_labels() {
    let p = Pipeline::synthetic(0.01, 42);
    let gw = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let th = p.od_graph(EdgeLabeling::TransitHours, VertexLabeling::Uniform);
    assert_eq!(gw.graph.vertex_count(), th.graph.vertex_count());
    assert_eq!(gw.graph.edge_count(), th.graph.edge_count());
    // Same endpoints, different label streams.
    let gw_labels: Vec<u32> = gw.graph.edges().map(|e| gw.graph.edge_label(e).0).collect();
    let th_labels: Vec<u32> = th.graph.edges().map(|e| th.graph.edge_label(e).0).collect();
    assert_ne!(gw_labels, th_labels);
}

#[test]
fn mined_patterns_occur_in_source_graph() {
    let p = Pipeline::synthetic(0.015, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4);
    let patterns = mine_single_graph(
        &g,
        8,
        1,
        Strategy::BreadthFirst,
        2,
        &Exec::new(2),
        |t, e| mine_for_algorithm1_with(t, &cfg, e),
    );
    assert!(!patterns.is_empty());
    for p in patterns.iter().take(20) {
        assert!(
            has_embedding(&p.pattern, &g),
            "mined pattern must occur in the source graph"
        );
    }
}

#[test]
fn both_miners_agree_on_obvious_structure() {
    // The OD graph's most repeated single-edge pattern should be found
    // frequent by FSG and compressive by SUBDUE.
    let p = Pipeline::synthetic(0.01, 42);
    let od = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();

    let cfg = FsgConfig::default()
        .with_support(Support::Count(5))
        .with_max_edges(2);
    let fsg_patterns =
        mine_single_graph(&g, 6, 1, Strategy::DepthFirst, 3, &Exec::new(2), |t, e| {
            mine_for_algorithm1_with(t, &cfg, e)
        });
    let top_fsg = fsg_patterns
        .iter()
        .filter(|p| p.pattern.edge_count() == 1)
        .max_by_key(|p| p.support)
        .expect("some 1-edge frequent pattern");

    let out = discover(
        &g,
        &SubdueConfig {
            eval: EvalMethod::Size,
            max_size: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let top_subdue = &out.best[0];

    // Agreement: the dominant single-edge label by FSG support must be
    // the label SUBDUE's best compressor is built from.
    let l1 = top_fsg
        .pattern
        .edge_label(top_fsg.pattern.edges().next().unwrap());
    assert!(top_subdue.pattern.edge_count() >= 1);
    assert!(
        top_subdue
            .pattern
            .edges()
            .any(|e| top_subdue.pattern.edge_label(e) == l1),
        "miners disagree on the dominant edge label"
    );
}

#[test]
fn shape_classification_over_mined_output() {
    let p = Pipeline::synthetic(0.02, 42);
    let od = p.od_graph(EdgeLabeling::TransitHours, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(4))
        .with_max_edges(4);
    let patterns = mine_single_graph(
        &g,
        8,
        2,
        Strategy::BreadthFirst,
        5,
        &Exec::new(2),
        |t, e| mine_for_algorithm1_with(t, &cfg, e),
    );
    // Every mined pattern classifies into the taxonomy without panicking,
    // and at least one recognizable transportation shape appears.
    let mut recognized = 0;
    for pat in &patterns {
        if classify(&pat.pattern) != PatternShape::Other {
            recognized += 1;
        }
    }
    assert!(recognized > 0, "no recognizable shapes in mined output");
}

#[test]
fn full_report_smoke() {
    // The complete E1..E16 run at a tiny scale must succeed and mention
    // every experiment header.
    let p = Pipeline::synthetic(0.012, 42);
    let report = p.full_report(0.012, 42);
    for header in [
        "E1:", "E2:", "E3:", "E4:", "E5:", "E8:", "E9:", "E10:", "E11:", "E12:", "E13:",
        "E14/E15:", "E16:",
    ] {
        assert!(report.contains(header), "report missing {header}");
    }
    assert!(report.contains("Figures 2/3"));
}
